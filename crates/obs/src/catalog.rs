//! The workspace's fixed metric catalog.
//!
//! Every metric the workspace can ever record is declared here, at compile
//! time, with a stable name. A fixed catalog buys three things:
//!
//! * **O(1) hot paths.** A metric id is an index into a pre-sized atomic
//!   array — no name hashing, no lock, no allocation on the record path.
//! * **A deterministic schema.** A snapshot always contains every metric
//!   (zero-valued ones included), in catalog order, so the JSON key set is
//!   a reviewable artifact: renaming or dropping a metric changes the
//!   committed golden list (`tests/golden/metrics_keys.txt`) and fails CI
//!   instead of silently drifting.
//! * **A single place to read the name catalog** — the README's
//!   "Observability" section is generated from the `help` strings here.
//!
//! Naming convention: `gcnt_<crate>_<what>[_total|_ns]`, following the
//! Prometheus exposition conventions (`_total` for counters, `_ns` for
//! nanosecond histograms).

/// Identifies a counter in the catalog; obtained from the `counters`
/// constants, never constructed by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Identifies a gauge in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Identifies a histogram in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// A counter's catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct CounterDef {
    /// Stable exposition name.
    pub name: &'static str,
    /// One-line description (Prometheus `# HELP`).
    pub help: &'static str,
}

/// A gauge's catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct GaugeDef {
    /// Stable exposition name.
    pub name: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// A histogram's catalog entry. `buckets` are inclusive upper bounds
/// (`le`); an implicit `+Inf` bucket is always appended.
#[derive(Debug, Clone, Copy)]
pub struct HistogramDef {
    /// Stable exposition name.
    pub name: &'static str,
    /// One-line description.
    pub help: &'static str,
    /// Inclusive upper bucket bounds, strictly increasing.
    pub buckets: &'static [u64],
}

/// Maximum explicit bucket bounds a histogram may declare; the registry
/// reserves `MAX_BUCKETS + 1` count slots per histogram (the extra one is
/// the implicit `+Inf` bucket).
pub const MAX_BUCKETS: usize = 13;

/// Nanosecond latency buckets: 1µs … 4s, roughly ×4 per step.
pub const NS_BUCKETS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

/// Embedding-row work buckets: 1 … 16M rows, ×8 per step.
pub const ROW_BUCKETS: &[u64] = &[1, 8, 64, 512, 4_096, 32_768, 262_144, 2_097_152, 16_777_216];

macro_rules! declare_counters {
    ($( $(#[$doc:meta])* $konst:ident => $name:literal, $help:literal; )+) => {
        #[allow(non_camel_case_types, clippy::enum_variant_names)]
        enum __CounterIdx { $($konst),+ }
        /// Counter ids, one per catalog entry.
        pub mod counters {
            use super::{CounterId, __CounterIdx};
            $( $(#[$doc])* pub const $konst: CounterId =
                CounterId(__CounterIdx::$konst as usize); )+
        }
        /// Every counter in the catalog, in id order.
        pub const COUNTERS: &[CounterDef] = &[
            $( CounterDef { name: $name, help: $help } ),+
        ];
    };
}

macro_rules! declare_gauges {
    ($( $(#[$doc:meta])* $konst:ident => $name:literal, $help:literal; )+) => {
        #[allow(non_camel_case_types)]
        enum __GaugeIdx { $($konst),+ }
        /// Gauge ids, one per catalog entry.
        pub mod gauges {
            use super::{GaugeId, __GaugeIdx};
            $( $(#[$doc])* pub const $konst: GaugeId =
                GaugeId(__GaugeIdx::$konst as usize); )+
        }
        /// Every gauge in the catalog, in id order.
        pub const GAUGES: &[GaugeDef] = &[
            $( GaugeDef { name: $name, help: $help } ),+
        ];
    };
}

macro_rules! declare_histograms {
    ($( $(#[$doc:meta])* $konst:ident => $name:literal, $help:literal, $buckets:expr; )+) => {
        #[allow(non_camel_case_types)]
        enum __HistIdx { $($konst),+ }
        /// Histogram ids, one per catalog entry.
        pub mod histograms {
            use super::{HistogramId, __HistIdx};
            $( $(#[$doc])* pub const $konst: HistogramId =
                HistogramId(__HistIdx::$konst as usize); )+
        }
        /// Every histogram in the catalog, in id order.
        pub const HISTOGRAMS: &[HistogramDef] = &[
            $( HistogramDef { name: $name, help: $help, buckets: $buckets } ),+
        ];
    };
}

declare_counters! {
    // --- tensor: sparse kernels and work budgets ---
    /// Forward SpMM kernel invocations (`spmm` + `spmm_rows`).
    TENSOR_SPMM_CALLS => "gcnt_tensor_spmm_calls_total",
        "Sparse-matrix-multiply kernel invocations (full and row-sliced)";
    /// Output rows produced by the forward SpMM kernels.
    TENSOR_SPMM_ROWS => "gcnt_tensor_spmm_rows_total",
        "Output rows produced by the SpMM kernels";
    /// Nonzeros traversed by the forward SpMM kernels.
    TENSOR_SPMM_NNZ => "gcnt_tensor_spmm_nnz_total",
        "Nonzero entries traversed by the SpMM kernels";
    /// Cooperative budget charges rejected with `BudgetExceeded`.
    TENSOR_BUDGET_STOPS => "gcnt_tensor_budget_stops_total",
        "Work-budget charges rejected because the cap was spent";
    /// Cooperative budget charges rejected with `Cancelled`.
    TENSOR_BUDGET_CANCELS => "gcnt_tensor_budget_cancels_total",
        "Work-budget charges rejected because the budget was cancelled";
    /// Halo rows gathered from other partitions by partitioned SpMM.
    TENSOR_HALO_ROWS => "gcnt_tensor_halo_rows_exchanged_total",
        "Halo rows exchanged between partitions by partitioned SpMM";
    /// Matrix products dispatched to the scalar reference kernel.
    TENSOR_KERNEL_SCALAR_DISPATCH => "gcnt_tensor_kernel_scalar_dispatch_total",
        "Matrix products dispatched to the scalar reference kernel";
    /// Matrix products dispatched to the register-blocked kernel.
    TENSOR_KERNEL_BLOCKED_DISPATCH => "gcnt_tensor_kernel_blocked_dispatch_total",
        "Matrix products dispatched to the register-blocked kernel";

    // --- core: training, cascade, incremental inference ---
    /// Training epochs completed (`gcnt_core::train`).
    CORE_TRAIN_EPOCHS => "gcnt_core_train_epochs_total",
        "Training epochs completed";
    /// Full cascade inference passes (`MultiStageGcn::predict_proba*`).
    CORE_CASCADE_INFERENCES => "gcnt_core_cascade_inferences_total",
        "Full multi-stage cascade inference passes";
    /// Incremental session refreshes (`CascadeSession::refresh*`).
    CORE_SESSION_REFRESHES => "gcnt_core_session_refreshes_total",
        "Incremental cascade-session refreshes";
    /// Incremental session reverts (`CascadeSession::revert`).
    CORE_SESSION_REVERTS => "gcnt_core_session_reverts_total",
        "Incremental cascade-session reverts (preview undo)";
    /// Embedding rows actually recomputed by session refreshes.
    CORE_INCR_ROWS_COMPUTED => "gcnt_core_incremental_rows_computed_total",
        "Embedding rows recomputed by incremental refreshes (cache misses)";
    /// Embedding rows a full pass would have recomputed but the cache
    /// served instead.
    CORE_INCR_ROWS_REUSED => "gcnt_core_incremental_rows_reused_total",
        "Embedding rows served from the incremental cache (cache hits)";

    // --- dft: the GCN-guided OP-insertion flow ---
    /// Prediction/insert iterations executed.
    DFT_FLOW_ITERATIONS => "gcnt_dft_flow_iterations_total",
        "OP-insertion flow iterations executed";
    /// Candidates impact-scored (Fig. 6 previews).
    DFT_FLOW_CANDIDATES_SCORED => "gcnt_dft_flow_candidates_scored_total",
        "Flow candidates scored by impact preview";
    /// Observation points committed.
    DFT_FLOW_OPS_INSERTED => "gcnt_dft_flow_ops_inserted_total",
        "Observation points inserted by the flow";
    /// Failed insertions rolled back under the skip budget.
    DFT_FLOW_SKIPS => "gcnt_dft_flow_skips_total",
        "Failed insertions rolled back under the skip budget";
    /// Embedding rows computed across all flow inferences; matches
    /// `FlowOutcome::inference.rows_computed` for a fresh (non-resumed)
    /// run.
    DFT_FLOW_ROWS_COMPUTED => "gcnt_dft_flow_rows_computed_total",
        "Embedding rows computed by flow inferences";
    /// Full-pass-equivalent rows of the same inferences.
    DFT_FLOW_ROWS_FULL => "gcnt_dft_flow_rows_full_total",
        "Full-pass-equivalent embedding rows of flow inferences";
    /// Inference calls the flow made (full passes + session refreshes).
    DFT_FLOW_INFERENCES => "gcnt_dft_flow_inferences_total",
        "Inference calls made by the flow";

    // --- serve: admission, ladder, breaker, journal ---
    /// Requests admitted by a serving core.
    SERVE_REQUESTS => "gcnt_serve_requests_total",
        "Inference requests admitted";
    /// Submissions bounced by admission control (`Overloaded`).
    SERVE_ADMISSION_REJECTS => "gcnt_serve_admission_rejects_total",
        "Submissions rejected by bounded-queue admission control";
    /// Requests answered on the incremental rung.
    SERVE_RUNG_INCREMENTAL => "gcnt_serve_rung_incremental_total",
        "Requests answered on the incremental ladder rung";
    /// Requests answered on the full-sparse rung.
    SERVE_RUNG_FULL_SPARSE => "gcnt_serve_rung_full_sparse_total",
        "Requests answered on the full-sparse ladder rung";
    /// Requests answered on the first-stage floor rung.
    SERVE_RUNG_FIRST_STAGE => "gcnt_serve_rung_first_stage_total",
        "Requests answered on the first-stage ladder rung";
    /// Rungs abandoned on the way down (deadline pressure, cache faults).
    SERVE_RUNG_DROPS => "gcnt_serve_rung_drops_total",
        "Ladder rungs abandoned under deadline pressure or cache faults";
    /// Circuit-breaker transitions into the open state.
    SERVE_BREAKER_OPENED => "gcnt_serve_breaker_opened_total",
        "Circuit-breaker transitions to open (failing fast)";
    /// Circuit-breaker transitions into the half-open probe state.
    SERVE_BREAKER_HALF_OPEN => "gcnt_serve_breaker_half_open_total",
        "Circuit-breaker transitions to half-open (probe admitted)";
    /// Circuit-breaker recoveries (non-closed state back to closed).
    SERVE_BREAKER_CLOSED => "gcnt_serve_breaker_closed_total",
        "Circuit-breaker recoveries to closed";
    /// Retry attempts beyond the first try of a guarded load.
    SERVE_RETRY_ATTEMPTS => "gcnt_serve_retry_attempts_total",
        "Retry attempts beyond the first try of a guarded load";
    /// Batch records appended (and fsynced) to a flow journal.
    SERVE_JOURNAL_APPENDS => "gcnt_serve_journal_appends_total",
        "Batch records appended and fsynced to flow journals";
    /// Journaled batches replayed on flow-job resume.
    SERVE_JOURNAL_REPLAYED => "gcnt_serve_journal_replayed_batches_total",
        "Journaled batches replayed when resuming flow jobs";
    /// Embedding rows persisted to the page store after warm inference.
    SERVE_STORE_ROWS_SAVED => "gcnt_serve_store_rows_saved_total",
        "Embedding rows persisted to the page store";
    /// Embedding rows reloaded from the page store on warm restart,
    /// instead of being recomputed.
    SERVE_STORE_ROWS_LOADED => "gcnt_serve_store_rows_loaded_total",
        "Embedding rows reloaded from the page store (recompute avoided)";

    // --- runtime: checkpoints and divergence guards ---
    /// Training checkpoints written.
    RUNTIME_CHECKPOINTS_WRITTEN => "gcnt_runtime_checkpoints_written_total",
        "Training checkpoints written";
    /// Training checkpoints loaded (validation passed).
    RUNTIME_CHECKPOINTS_LOADED => "gcnt_runtime_checkpoints_loaded_total",
        "Training checkpoints loaded and validated";
    /// Divergence-guard rollbacks performed.
    RUNTIME_ROLLBACKS => "gcnt_runtime_rollbacks_total",
        "Divergence-guard rollbacks to the last good state";

    // --- nn / netlist / mlbase substrate ---
    /// Optimizer parameter-update steps.
    NN_OPTIMIZER_STEPS => "gcnt_nn_optimizer_steps_total",
        "Optimizer parameter-update steps";
    /// Synthetic designs generated.
    NETLIST_DESIGNS_GENERATED => "gcnt_netlist_designs_generated_total",
        "Synthetic designs generated";
    /// Full SCOAP recomputations.
    NETLIST_SCOAP_COMPUTES => "gcnt_netlist_scoap_computes_total",
        "Full SCOAP testability computations";
    /// Classical-baseline model fits (LR / RF / SVM / MLP).
    MLBASE_FITS => "gcnt_mlbase_fits_total",
        "Classical baseline model fits";

    // --- net: the TCP/loopback wire protocol and shard router ---
    /// Connections accepted by the net server (plus loopback pairs).
    NET_CONNECTIONS_OPENED => "gcnt_net_connections_opened_total",
        "Network connections accepted by the serving layer";
    /// Frames written to any connection (both directions of a loopback).
    NET_FRAMES_SENT => "gcnt_net_frames_sent_total",
        "Wire frames written to connections";
    /// Frames read and verified from any connection.
    NET_FRAMES_RECV => "gcnt_net_frames_recv_total",
        "Wire frames read and checksum-verified from connections";
    /// Frames refused for a broken envelope (`NT001`): bad magic,
    /// length over the cap, or a payload checksum mismatch.
    NET_FRAME_CHECKSUM_FAILURES => "gcnt_net_frame_checksum_failures_total",
        "Wire frames refused for a broken envelope (NT001)";
    /// Connections evicted because a frame stalled past the read
    /// deadline with bytes still outstanding.
    NET_SLOW_LORIS_EVICTIONS => "gcnt_net_slow_loris_evictions_total",
        "Connections evicted for trickling a frame past the read deadline";
    /// Typed protocol error frames written (Overloaded, Deadline, ...).
    NET_ERROR_FRAMES_SENT => "gcnt_net_error_frames_sent_total",
        "Typed protocol error frames written to clients";
    /// Client-side retries: reconnects and resubmitted requests after
    /// transient failures or retryable error frames.
    NET_CLIENT_RETRIES => "gcnt_net_client_retries_total",
        "Client reconnects and request retries after transient failures";

    // --- store: the crash-safe page store ---
    /// Pages read from the data file (cache misses; hits cost nothing).
    STORE_PAGE_READS => "gcnt_store_page_reads_total",
        "Store pages read from disk (page-cache misses)";
    /// Pages written to the data file (appends and compaction copies).
    STORE_PAGE_WRITES => "gcnt_store_page_writes_total",
        "Store pages written to disk";
    /// Pages evicted from the bounded page cache.
    STORE_PAGE_EVICTIONS => "gcnt_store_page_cache_evictions_total",
        "Pages evicted from the bounded page cache";
    /// Integrity-check failures (page, segment, or metadata checksums).
    STORE_CHECKSUM_FAILURES => "gcnt_store_checksum_failures_total",
        "Store integrity-check failures (page/segment/metadata checksums)";
    /// Compaction runs completed (data-file generation switches).
    STORE_COMPACTIONS => "gcnt_store_compactions_total",
        "Store compaction runs completed";
}

declare_gauges! {
    /// Loss of the most recent training epoch.
    CORE_TRAIN_LOSS => "gcnt_core_train_loss",
        "Loss of the most recent training epoch";
    /// Gradient norm of the most recent guarded training epoch.
    CORE_TRAIN_GRAD_NORM => "gcnt_core_train_grad_norm",
        "Gradient norm of the most recent guarded training epoch";
    /// Active nodes entering cascade stage 0 at the last cascade training.
    CORE_CASCADE_STAGE0_ACTIVE => "gcnt_core_cascade_stage0_active",
        "Active nodes entering cascade stage 0 (last training run)";
    /// Active nodes entering cascade stage 1 at the last cascade training.
    CORE_CASCADE_STAGE1_ACTIVE => "gcnt_core_cascade_stage1_active",
        "Active nodes entering cascade stage 1 (last training run)";
    /// Active nodes entering cascade stage 2 at the last cascade training.
    CORE_CASCADE_STAGE2_ACTIVE => "gcnt_core_cascade_stage2_active",
        "Active nodes entering cascade stage 2 (last training run)";
    /// Active nodes entering cascade stage 3 at the last cascade training.
    CORE_CASCADE_STAGE3_ACTIVE => "gcnt_core_cascade_stage3_active",
        "Active nodes entering cascade stage 3 (last training run)";
    /// Current bounded-queue depth.
    SERVE_QUEUE_DEPTH => "gcnt_serve_queue_depth",
        "Pending requests in the bounded queue";
    /// High-water mark of the bounded-queue depth.
    SERVE_QUEUE_DEPTH_HIGH_WATER => "gcnt_serve_queue_depth_high_water",
        "High-water mark of the bounded-queue depth";
    /// Live (uncompacted) records in the current flow journal.
    SERVE_JOURNAL_RECORDS => "gcnt_serve_journal_records",
        "Live records in the current flow journal";
    /// On-disk bytes of the current flow journal file.
    SERVE_JOURNAL_BYTES => "gcnt_serve_journal_bytes",
        "On-disk bytes of the current flow journal file";
    /// Partitions in the most recently built partitioned adjacency.
    TENSOR_PARTITIONS_ACTIVE => "gcnt_tensor_partitions_active",
        "Partitions in the most recently built partitioned adjacency";
    /// Currently open network connections.
    NET_CONNECTIONS_OPEN => "gcnt_net_connections_open",
        "Currently open network connections";
    /// High-water mark of simultaneously open network connections.
    NET_CONNECTIONS_PEAK => "gcnt_net_connections_peak",
        "High-water mark of simultaneously open network connections";
    /// Shards the router currently fans requests across.
    NET_SHARDS_ACTIVE => "gcnt_net_shards_active",
        "Shards the router fans requests across";
    /// High-water mark of any single shard's admission-queue depth.
    NET_SHARD_QUEUE_DEPTH_PEAK => "gcnt_net_shard_queue_depth_peak",
        "High-water mark of per-shard admission-queue depth";
}

declare_histograms! {
    /// Journal fsync latency per appended record.
    SERVE_JOURNAL_FSYNC_NS => "gcnt_serve_journal_fsync_ns",
        "Write-ahead journal append+fsync latency (ns)", NS_BUCKETS;
    /// Wall-clock latency of requests answered on the incremental rung.
    SERVE_RUNG_INCREMENTAL_NS => "gcnt_serve_rung_incremental_latency_ns",
        "Ladder latency of requests answered incrementally (ns)", NS_BUCKETS;
    /// Wall-clock latency of requests answered on the full-sparse rung.
    SERVE_RUNG_FULL_SPARSE_NS => "gcnt_serve_rung_full_sparse_latency_ns",
        "Ladder latency of requests answered full-sparse (ns)", NS_BUCKETS;
    /// Wall-clock latency of requests answered on the floor rung.
    SERVE_RUNG_FIRST_STAGE_NS => "gcnt_serve_rung_first_stage_latency_ns",
        "Ladder latency of requests answered first-stage (ns)", NS_BUCKETS;
    /// Embedding-row work spent per admitted request.
    SERVE_REQUEST_ROWS_SPENT => "gcnt_serve_request_rows_spent",
        "Embedding-row budget units spent per admitted request", ROW_BUCKETS;
    /// Wall-clock latency per flow iteration.
    DFT_FLOW_ITERATION_NS => "gcnt_dft_flow_iteration_ns",
        "OP-insertion flow iteration latency (ns)", NS_BUCKETS;
    /// Journal records folded into pages per compaction run.
    STORE_COMPACTION_RECORDS => "gcnt_store_compaction_records",
        "Journal records folded into store pages per compaction", ROW_BUCKETS;
    /// Wall-clock latency of one partition worker's SpMM block.
    TENSOR_PARTITION_SPMM_NS => "gcnt_tensor_partition_spmm_ns",
        "Per-partition SpMM worker latency (ns)", NS_BUCKETS;
    /// Wall-clock latency of full SpMM passes run on the scalar kernel.
    TENSOR_SPMM_SCALAR_NS => "gcnt_tensor_spmm_scalar_ns",
        "Full SpMM pass latency on the scalar reference kernel (ns)", NS_BUCKETS;
    /// Wall-clock latency of full SpMM passes run on the blocked kernel.
    TENSOR_SPMM_BLOCKED_NS => "gcnt_tensor_spmm_blocked_ns",
        "Full SpMM pass latency on the register-blocked kernel (ns)", NS_BUCKETS;
    /// Client-observed wall-clock latency per network request
    /// (loadgen's p50/p99/p999 source).
    NET_REQUEST_NS => "gcnt_net_request_latency_ns",
        "Client-observed network request latency (ns)", NS_BUCKETS;
    /// Encoded size of written wire frames.
    NET_FRAME_BYTES => "gcnt_net_frame_bytes",
        "Encoded bytes per written wire frame", ROW_BUCKETS;
}

/// Number of counters in the catalog.
pub const COUNTER_COUNT: usize = COUNTERS.len();
/// Number of gauges in the catalog.
pub const GAUGE_COUNT: usize = GAUGES.len();
/// Number of histograms in the catalog.
pub const HISTOGRAM_COUNT: usize = HISTOGRAMS.len();

/// Looks up a counter id by exposition name (test/tooling helper; the hot
/// paths use the constants).
pub fn counter_by_name(name: &str) -> Option<CounterId> {
    COUNTERS.iter().position(|d| d.name == name).map(CounterId)
}

/// Looks up a gauge id by exposition name.
pub fn gauge_by_name(name: &str) -> Option<GaugeId> {
    GAUGES.iter().position(|d| d.name == name).map(GaugeId)
}

/// Looks up a histogram id by exposition name.
pub fn histogram_by_name(name: &str) -> Option<HistogramId> {
    HISTOGRAMS
        .iter()
        .position(|d| d.name == name)
        .map(HistogramId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut names: Vec<&str> = COUNTERS
            .iter()
            .map(|d| d.name)
            .chain(GAUGES.iter().map(|d| d.name))
            .chain(HISTOGRAMS.iter().map(|d| d.name))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names");
        for name in names {
            assert!(name.starts_with("gcnt_"), "{name}: missing gcnt_ prefix");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name}: invalid exposition name"
            );
        }
        for d in COUNTERS {
            assert!(
                d.name.ends_with("_total"),
                "{}: counters end in _total",
                d.name
            );
        }
    }

    #[test]
    fn histogram_buckets_fit_and_increase() {
        for d in HISTOGRAMS {
            assert!(
                d.buckets.len() <= MAX_BUCKETS,
                "{}: too many buckets",
                d.name
            );
            assert!(!d.buckets.is_empty(), "{}: no buckets", d.name);
            for w in d.buckets.windows(2) {
                assert!(w[0] < w[1], "{}: buckets not increasing", d.name);
            }
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        assert_eq!(
            counter_by_name("gcnt_tensor_spmm_rows_total"),
            Some(counters::TENSOR_SPMM_ROWS)
        );
        assert_eq!(
            gauge_by_name("gcnt_core_train_loss"),
            Some(gauges::CORE_TRAIN_LOSS)
        );
        assert_eq!(
            histogram_by_name("gcnt_serve_journal_fsync_ns"),
            Some(histograms::SERVE_JOURNAL_FSYNC_NS)
        );
        assert_eq!(counter_by_name("nope"), None);
    }
}
