//! The metric store: fixed-size atomic arrays behind an enabled flag.
//!
//! A `MetricsRegistry` owns one `AtomicU64` per counter, one per gauge
//! (f64 bits), and a fixed stride of slots per histogram. All record paths
//! are lock-free, allocation-free, and O(1); when the registry is disabled
//! (the default) every record path is a single `Relaxed` load and a
//! predictable branch.
//!
//! There is one process-wide instance (`global()`), plus `MetricsRegistry::new()`
//! for tests that need isolation from concurrently-running code.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::catalog::{
    CounterId, GaugeId, HistogramId, COUNTER_COUNT, GAUGE_COUNT, HISTOGRAMS, HISTOGRAM_COUNT,
    MAX_BUCKETS,
};

/// Slots per histogram in the flat array: `MAX_BUCKETS` explicit bucket
/// counts, one `+Inf` overflow count, the value sum, and the observation
/// count.
pub(crate) const HIST_STRIDE: usize = MAX_BUCKETS + 3;
pub(crate) const HIST_INF_SLOT: usize = MAX_BUCKETS;
pub(crate) const HIST_SUM_SLOT: usize = MAX_BUCKETS + 1;
pub(crate) const HIST_COUNT_SLOT: usize = MAX_BUCKETS + 2;

/// A fixed-catalog metric store. See the module docs.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: [AtomicU64; COUNTER_COUNT],
    gauges: [AtomicU64; GAUGE_COUNT],
    hist: [AtomicU64; HISTOGRAM_COUNT * HIST_STRIDE],
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry. Disabled until `global().enable()`.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

impl MetricsRegistry {
    /// Creates a disabled registry with every metric at zero.
    pub const fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            counters: [const { AtomicU64::new(0) }; COUNTER_COUNT],
            gauges: [const { AtomicU64::new(0) }; GAUGE_COUNT],
            hist: [const { AtomicU64::new(0) }; HISTOGRAM_COUNT * HIST_STRIDE],
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        // ORDERING: Release publishes writes made before enabling; the
        // flag flip itself is off the record paths, so the cost is fine.
        self.enabled.store(true, Ordering::Release);
    }

    /// Turns recording off; existing values are kept.
    pub fn disable(&self) {
        // ORDERING: Release, symmetric with `enable`; record paths keep
        // their Relaxed load either way.
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether record calls currently do anything. This is the branch every
    /// hot path takes; `Relaxed` keeps it to a plain load.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Resets every metric to zero (the enabled flag is untouched).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.hist {
            h.store(0, Ordering::Relaxed);
        }
    }

    // --- counters ---

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counters[id.0].fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter (reads regardless of the enabled flag).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0].load(Ordering::Relaxed)
    }

    // --- gauges (f64 stored as bits) ---

    /// Sets a gauge to `value`.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauges[id.0].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raises a gauge to `value` if `value` exceeds the current reading
    /// (high-water mark). NaN is ignored.
    #[inline]
    pub fn gauge_max(&self, id: GaugeId, value: f64) {
        if !self.is_enabled() || value.is_nan() {
            return;
        }
        let slot = &self.gauges[id.0];
        let mut cur = slot.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match slot.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id.0].load(Ordering::Relaxed))
    }

    // --- histograms ---

    /// Records one observation of `value` into a histogram.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let def = &HISTOGRAMS[id.0];
        let base = id.0 * HIST_STRIDE;
        // Bucket counts are non-cumulative in storage; the snapshot layer
        // accumulates them into Prometheus `le` semantics.
        let slot = match def.buckets.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => HIST_INF_SLOT,
        };
        self.hist[base + slot].fetch_add(1, Ordering::Relaxed);
        self.hist[base + HIST_SUM_SLOT].fetch_add(value, Ordering::Relaxed);
        self.hist[base + HIST_COUNT_SLOT].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded into a histogram.
    pub fn histogram_count(&self, id: HistogramId) -> u64 {
        self.hist[id.0 * HIST_STRIDE + HIST_COUNT_SLOT].load(Ordering::Relaxed)
    }

    /// Sum of all values recorded into a histogram.
    pub fn histogram_sum(&self, id: HistogramId) -> u64 {
        self.hist[id.0 * HIST_STRIDE + HIST_SUM_SLOT].load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub(crate) fn histogram_buckets(&self, id: HistogramId) -> Vec<u64> {
        let def = &HISTOGRAMS[id.0];
        let base = id.0 * HIST_STRIDE;
        let mut out = Vec::with_capacity(def.buckets.len() + 1);
        for i in 0..def.buckets.len() {
            out.push(self.hist[base + i].load(Ordering::Relaxed));
        }
        out.push(self.hist[base + HIST_INF_SLOT].load(Ordering::Relaxed));
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{counters, gauges, histograms, NS_BUCKETS};

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::new();
        r.add(counters::TENSOR_SPMM_ROWS, 7);
        r.gauge_set(gauges::CORE_TRAIN_LOSS, 1.25);
        r.gauge_max(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER, 9.0);
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 123);
        assert_eq!(r.counter(counters::TENSOR_SPMM_ROWS), 0);
        assert_eq!(r.gauge(gauges::CORE_TRAIN_LOSS), 0.0);
        assert_eq!(r.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS), 0);
    }

    #[test]
    fn enabled_registry_accumulates() {
        let r = MetricsRegistry::new();
        r.enable();
        r.add(counters::DFT_FLOW_OPS_INSERTED, 3);
        r.incr(counters::DFT_FLOW_OPS_INSERTED);
        assert_eq!(r.counter(counters::DFT_FLOW_OPS_INSERTED), 4);

        r.gauge_set(gauges::CORE_TRAIN_LOSS, 0.5);
        assert_eq!(r.gauge(gauges::CORE_TRAIN_LOSS), 0.5);
        r.gauge_max(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER, 4.0);
        r.gauge_max(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER, 2.0);
        assert_eq!(r.gauge(gauges::SERVE_QUEUE_DEPTH_HIGH_WATER), 4.0);

        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 500);
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 2_000);
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, u64::MAX / 2);
        assert_eq!(r.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS), 3);
        assert_eq!(
            r.histogram_sum(histograms::SERVE_JOURNAL_FSYNC_NS),
            500 + 2_000 + u64::MAX / 2
        );
        let buckets = r.histogram_buckets(histograms::SERVE_JOURNAL_FSYNC_NS);
        assert_eq!(buckets.len(), NS_BUCKETS.len() + 1);
        assert_eq!(buckets[0], 1); // 500 <= 1_000
        assert_eq!(buckets[1], 1); // 2_000 <= 4_000
        assert_eq!(buckets[NS_BUCKETS.len()], 1); // overflow -> +Inf
        assert_eq!(buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn reset_zeroes_but_keeps_enabled() {
        let r = MetricsRegistry::new();
        r.enable();
        r.incr(counters::SERVE_REQUESTS);
        r.reset();
        assert_eq!(r.counter(counters::SERVE_REQUESTS), 0);
        assert!(r.is_enabled());
        r.incr(counters::SERVE_REQUESTS);
        assert_eq!(r.counter(counters::SERVE_REQUESTS), 1);
    }
}
