//! Scoped span timers: measure a region's wall-clock time into a
//! nanosecond histogram via a drop guard.
//!
//! When the registry is disabled the guard never touches the clock —
//! construction and drop are both a relaxed load and a branch — so a
//! `SpanTimer` can sit permanently on a hot path.

use std::time::Instant;

use crate::catalog::HistogramId;
use crate::registry::MetricsRegistry;

/// Times from construction to drop and records the elapsed nanoseconds
/// into `hist`. Obtain one with [`MetricsRegistry`]-aware [`SpanTimer::start`].
pub struct SpanTimer<'a> {
    registry: &'a MetricsRegistry,
    hist: HistogramId,
    // None when the registry was disabled at start: no clock read, no record.
    started: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span against `registry`. Reads the clock only if the
    /// registry is enabled.
    #[inline]
    pub fn start(registry: &'a MetricsRegistry, hist: HistogramId) -> Self {
        let started = if registry.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        SpanTimer {
            registry,
            hist,
            started,
        }
    }

    /// Abandons the span without recording (e.g. the guarded operation
    /// failed and its latency would pollute the histogram).
    #[inline]
    pub fn cancel(mut self) {
        self.started = None;
    }

    /// Ends the span now and records it, consuming the guard.
    #[inline]
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            let ns = started.elapsed().as_nanos();
            self.registry
                .observe(self.hist, u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::histograms;

    #[test]
    fn records_when_enabled() {
        let r = MetricsRegistry::new();
        r.enable();
        {
            let _span = SpanTimer::start(&r, histograms::SERVE_JOURNAL_FSYNC_NS);
            std::hint::black_box(1 + 1);
        }
        assert_eq!(r.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS), 1);
    }

    #[test]
    fn silent_when_disabled() {
        let r = MetricsRegistry::new();
        {
            let _span = SpanTimer::start(&r, histograms::SERVE_JOURNAL_FSYNC_NS);
        }
        assert_eq!(r.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS), 0);
    }

    #[test]
    fn cancel_discards_the_span() {
        let r = MetricsRegistry::new();
        r.enable();
        let span = SpanTimer::start(&r, histograms::SERVE_JOURNAL_FSYNC_NS);
        span.cancel();
        assert_eq!(r.histogram_count(histograms::SERVE_JOURNAL_FSYNC_NS), 0);
    }
}
