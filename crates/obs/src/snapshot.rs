//! Deterministic snapshots of a registry in JSON and Prometheus text
//! exposition formats.
//!
//! Both formats emit **every** catalog metric in catalog order, including
//! zero-valued ones, so the key set of a snapshot is a function of the
//! catalog alone — which is what lets CI diff a snapshot's keys against a
//! committed golden list.

use crate::catalog::{CounterId, GaugeId, HistogramId, COUNTERS, GAUGES, HISTOGRAMS};
use crate::registry::MetricsRegistry;

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// (name, value) per counter, catalog order.
    pub counters: Vec<(&'static str, u64)>,
    /// (name, value) per gauge, catalog order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Per histogram, catalog order.
    pub histograms: Vec<HistogramSnapshot>,
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Exposition name.
    pub name: &'static str,
    /// Explicit upper bounds, as declared in the catalog.
    pub bounds: &'static [u64],
    /// Non-cumulative per-bucket counts; last entry is the `+Inf` bucket,
    /// so `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`, resolved to a bucket
    /// upper bound: the smallest declared bound whose cumulative count
    /// reaches `ceil(q * count)`. Observations that landed in the `+Inf`
    /// bucket resolve to the largest declared bound + 1 (a sentinel that
    /// still orders correctly against in-range values). Returns 0 for an
    /// empty histogram.
    ///
    /// This is the only quantile path available to callers: per-bucket
    /// counts are not exposed by the live registry, so latency reports
    /// (e.g. `gcnt loadgen`'s p50/p99/p999) go through a snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // CAST: q*count <= count <= u64::MAX; ceil keeps rank >= 1 for q > 0.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts.get(i).copied().unwrap_or(0);
            if cumulative >= rank {
                return *bound;
            }
        }
        self.bounds.last().map_or(1, |b| b.saturating_add(1))
    }
}

impl Snapshot {
    /// Captures the current state of `registry`. Concurrent writers may
    /// land between individual loads; each metric is itself consistent.
    pub fn capture(registry: &MetricsRegistry) -> Self {
        let counters = COUNTERS
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name, registry.counter(CounterId(i))))
            .collect();
        let gauges = GAUGES
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name, registry.gauge(GaugeId(i))))
            .collect();
        let histograms = HISTOGRAMS
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let id = HistogramId(i);
                HistogramSnapshot {
                    name: d.name,
                    bounds: d.buckets,
                    counts: registry.histogram_buckets(id),
                    sum: registry.histogram_sum(id),
                    count: registry.histogram_count(id),
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Value of a counter by exposition name, if it exists in the catalog.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by exposition name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// A histogram by exposition name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a stable JSON document:
    ///
    /// ```json
    /// {
    ///   "counters": {"gcnt_...": 0, ...},
    ///   "gauges": {"gcnt_...": 0.0, ...},
    ///   "histograms": {"gcnt_...": {"buckets": [[1000, 0], ...],
    ///                               "inf": 0, "sum": 0, "count": 0}, ...}
    /// }
    /// ```
    ///
    /// Keys appear in catalog order; the output is byte-stable for equal
    /// metric values. (Hand-rolled because the workspace's serde_json shim
    /// has no untyped `Value`.)
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&fmt_f64(*value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(h.name);
            out.push_str("\": {\"buckets\": [");
            for (j, bound) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                out.push_str(&bound.to_string());
                out.push_str(", ");
                out.push_str(&h.counts[j].to_string());
                out.push(']');
            }
            out.push_str("], \"inf\": ");
            out.push_str(&h.counts[h.bounds.len()].to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&h.sum.to_string());
            out.push_str(", \"count\": ");
            out.push_str(&h.count.to_string());
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` per family, cumulative `le` buckets,
    /// `_sum`/`_count` series for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            push_header(&mut out, name, COUNTERS[i].help, "counter");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            push_header(&mut out, name, GAUGES[i].help, "gauge");
            out.push_str(name);
            out.push(' ');
            out.push_str(&fmt_f64(*value));
            out.push('\n');
        }
        for (i, h) in self.histograms.iter().enumerate() {
            push_header(&mut out, h.name, HISTOGRAMS[i].help, "histogram");
            let mut cumulative = 0u64;
            for (j, bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[j];
                out.push_str(h.name);
                out.push_str("_bucket{le=\"");
                out.push_str(&bound.to_string());
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(h.name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&h.count.to_string());
            out.push('\n');
            out.push_str(h.name);
            out.push_str("_sum ");
            out.push_str(&h.sum.to_string());
            out.push('\n');
            out.push_str(h.name);
            out.push_str("_count ");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        out
    }
}

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// JSON-safe f64 formatting: integral values keep a `.0` suffix so the
/// field stays typed as a float; non-finite values (invalid JSON) are
/// clamped to 0.0.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{
        counters, gauges, histograms, COUNTER_COUNT, GAUGE_COUNT, HISTOGRAM_COUNT,
    };

    #[test]
    fn capture_contains_full_catalog() {
        let r = MetricsRegistry::new();
        let snap = Snapshot::capture(&r);
        assert_eq!(snap.counters.len(), COUNTER_COUNT);
        assert_eq!(snap.gauges.len(), GAUGE_COUNT);
        assert_eq!(snap.histograms.len(), HISTOGRAM_COUNT);
        assert_eq!(snap.counter("gcnt_tensor_spmm_rows_total"), Some(0));
    }

    #[test]
    fn json_is_stable_and_reflects_values() {
        let r = MetricsRegistry::new();
        r.enable();
        r.add(counters::TENSOR_SPMM_ROWS, 42);
        r.gauge_set(gauges::CORE_TRAIN_LOSS, 0.125);
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 900);
        let a = Snapshot::capture(&r).to_json();
        let b = Snapshot::capture(&r).to_json();
        assert_eq!(a, b, "snapshots of an idle registry must be byte-stable");
        assert!(a.contains("\"gcnt_tensor_spmm_rows_total\": 42"));
        assert!(a.contains("\"gcnt_core_train_loss\": 0.125"));
        assert!(a.contains("\"count\": 1"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        r.enable();
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 500); // le=1000
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 3_000); // le=4000
        let text = Snapshot::capture(&r).to_prometheus();
        assert!(text.contains("gcnt_serve_journal_fsync_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("gcnt_serve_journal_fsync_ns_bucket{le=\"4000\"} 2"));
        assert!(text.contains("gcnt_serve_journal_fsync_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gcnt_serve_journal_fsync_ns_count 2"));
        assert!(text.contains("# TYPE gcnt_serve_journal_fsync_ns histogram"));
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let r = MetricsRegistry::new();
        r.enable();
        // SERVE_JOURNAL_FSYNC_NS uses NS_BUCKETS starting 1000, 4000, ...
        for _ in 0..98 {
            r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 500); // le=1000
        }
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, 3_000); // le=4000
        r.observe(histograms::SERVE_JOURNAL_FSYNC_NS, u64::MAX); // +Inf
        let snap = Snapshot::capture(&r);
        let h = snap
            .histogram("gcnt_serve_journal_fsync_ns")
            .expect("catalog histogram");
        assert_eq!(h.quantile(0.5), 1000);
        assert_eq!(h.quantile(0.98), 1000);
        assert_eq!(h.quantile(0.99), 4000);
        assert!(h.quantile(1.0) > 4000, "tail lands past the last bound hit");
        let empty = HistogramSnapshot {
            name: "x",
            bounds: &[10, 20],
            counts: vec![0, 0, 0],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn non_finite_gauges_render_as_zero() {
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.5), "0.5");
    }
}
