//! gcnt-obs: the workspace's observability core.
//!
//! A zero-heavy-dep metrics layer: atomic counters, gauges, fixed-bucket
//! histograms and scoped span timers behind a global [`MetricsRegistry`],
//! with deterministic snapshot output in JSON and Prometheus text
//! exposition formats.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** The registry starts disabled; every record path
//!    is then a single `Relaxed` atomic load and a branch — no clock
//!    reads, no allocation, no locks. Bench-verified ≤2% overhead on the
//!    `flow` bench.
//! 2. **Fixed catalog.** All metrics are declared at compile time in
//!    [`catalog`], giving O(1) index-based recording and a deterministic
//!    snapshot schema that CI can diff against a golden key list.
//! 3. **Injectable.** `obs::global()` is the process default; tests that
//!    need isolation construct their own `MetricsRegistry::new()`.
//!
//! Typical producer:
//!
//! ```
//! use gcnt_obs::{self as obs, counters};
//! obs::global().add(counters::TENSOR_SPMM_ROWS, 128);
//! ```
//!
//! Typical consumer:
//!
//! ```
//! use gcnt_obs::{self as obs, Snapshot};
//! obs::global().enable();
//! let snap = Snapshot::capture(obs::global());
//! let json = snap.to_json();
//! let prom = snap.to_prometheus();
//! # assert!(json.contains("gcnt_tensor_spmm_rows_total"));
//! # assert!(prom.contains("# TYPE"));
//! ```

pub mod catalog;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use catalog::{
    counter_by_name, counters, gauge_by_name, gauges, histogram_by_name, histograms, CounterDef,
    CounterId, GaugeDef, GaugeId, HistogramDef, HistogramId, COUNTERS, COUNTER_COUNT, GAUGES,
    GAUGE_COUNT, HISTOGRAMS, HISTOGRAM_COUNT,
};
pub use registry::{global, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::SpanTimer;

/// Starts a span timer against the global registry.
#[inline]
pub fn span(hist: HistogramId) -> SpanTimer<'static> {
    SpanTimer::start(global(), hist)
}
