//! Deterministic fault injection for recovery testing.
//!
//! A [`FaultPlan`] names exact injection points — "poison the gradient at
//! epoch 3", "kill worker 1 at epoch 2" — so every injected failure is
//! reproducible without a random source. The injection hooks compile to
//! no-ops unless the `fault-inject` cargo feature is on, so production
//! builds carry no fault paths; the CI fault-injection job runs the
//! test-suite with the feature enabled.

/// A plan of faults to inject into a training run. With the
/// `fault-inject` feature disabled this is always the empty plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    #[cfg(feature = "fault-inject")]
    nan_grad_epoch: Option<usize>,
    #[cfg(feature = "fault-inject")]
    kill_worker: Option<(usize, usize)>,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Poisons the summed gradient with a NaN once, at the given epoch —
    /// a transient numeric fault the divergence guard must catch and roll
    /// back from.
    #[cfg(feature = "fault-inject")]
    pub fn with_nan_grads(mut self, epoch: usize) -> Self {
        self.nan_grad_epoch = Some(epoch);
        self
    }

    /// Panics the given worker thread at the given epoch — a died-worker
    /// fault the parallel trainer must recover from by recomputing that
    /// worker's graph serially.
    #[cfg(feature = "fault-inject")]
    pub fn with_worker_kill(mut self, epoch: usize, worker: usize) -> Self {
        self.kill_worker = Some((epoch, worker));
        self
    }

    /// Hook: corrupts `grads` if this epoch is the planned NaN injection
    /// point. One-shot — the fault is transient, so the retry after
    /// rollback sees clean gradients.
    pub(crate) fn corrupt_grads(&mut self, epoch: usize, grads: &mut gcnt_core::GcnGrads) {
        #[cfg(feature = "fault-inject")]
        if self.nan_grad_epoch == Some(epoch) {
            self.nan_grad_epoch = None;
            grads.agg_weights[0] = f32::NAN;
        }
        let _ = (epoch, grads);
    }

    /// Hook: whether the given worker should die at the given epoch.
    pub(crate) fn should_kill(&self, epoch: usize, worker: usize) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.kill_worker == Some((epoch, worker))
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = (epoch, worker);
            false
        }
    }
}

/// Truncates a file to half its length — a torn-write simulation for
/// checkpoint recovery tests.
///
/// # Panics
///
/// Panics on filesystem errors (test helper).
#[cfg(feature = "fault-inject")]
pub fn truncate_file(path: &std::path::Path) {
    let bytes = std::fs::read(path).expect("read file to truncate");
    std::fs::write(path, &bytes[..bytes.len() / 2]).expect("write truncated file");
}

/// Flips one bit at the given byte offset — a bit-rot simulation for
/// checksum tests.
///
/// # Panics
///
/// Panics on filesystem errors or an out-of-range offset (test helper).
#[cfg(feature = "fault-inject")]
pub fn flip_byte(path: &std::path::Path, offset: usize) {
    let mut bytes = std::fs::read(path).expect("read file to corrupt");
    bytes[offset] ^= 0x01;
    std::fs::write(path, bytes).expect("write corrupted file");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut plan = FaultPlan::none();
        assert!(!plan.should_kill(0, 0));
        let gcn = gcnt_core::Gcn::new(
            &gcnt_core::GcnConfig {
                embed_dims: vec![2],
                fc_dims: vec![2],
                ..gcnt_core::GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(1),
        );
        let mut grads = gcn.zero_grads();
        plan.corrupt_grads(0, &mut grads);
        assert!(grads.is_finite());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn planned_faults_fire_once() {
        let mut plan = FaultPlan::none().with_nan_grads(2).with_worker_kill(1, 0);
        assert!(plan.should_kill(1, 0));
        assert!(!plan.should_kill(1, 1));
        assert!(!plan.should_kill(2, 0));
        let gcn = gcnt_core::Gcn::new(
            &gcnt_core::GcnConfig {
                embed_dims: vec![2],
                fc_dims: vec![2],
                ..gcnt_core::GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(1),
        );
        let mut grads = gcn.zero_grads();
        plan.corrupt_grads(1, &mut grads);
        assert!(grads.is_finite(), "wrong epoch must not fire");
        plan.corrupt_grads(2, &mut grads);
        assert!(!grads.is_finite(), "planned epoch must fire");
        let mut grads2 = gcn.zero_grads();
        plan.corrupt_grads(2, &mut grads2);
        assert!(grads2.is_finite(), "fault is one-shot");
    }
}
