//! Deterministic fault injection for recovery testing.
//!
//! A [`FaultPlan`] names exact injection points — "poison the gradient at
//! epoch 3", "kill worker 1 at epoch 2", "abort after journal record 4" —
//! so every injected failure is reproducible without a random source. The
//! injection hooks compile to no-ops unless the `fault-inject` cargo
//! feature is on, so production builds carry no fault paths; the CI
//! fault-injection jobs run the test-suite and the `gcnt serve`
//! fault-matrix with the feature enabled.
//!
//! Beyond the training faults, the plan carries *serving-path* faults for
//! the long-lived inference/flow service:
//!
//! * **latency** — a work-cost multiplier, making every embedding row
//!   cost N budget units so deadline pressure is reproducible;
//! * **queue saturation** — admission control behaves as if the bounded
//!   queue were full;
//! * **stale-cache poisoning** — the incremental rung of one request
//!   fails with a stale-cache error, forcing the degradation ladder down;
//! * **kill after journal record** — the process aborts right after the
//!   Nth write-ahead record reaches disk, between two batches of a flow
//!   job, for crash-resume testing.
//!
//! And *network* faults for the TCP serving layer (`gcnt-net`):
//!
//! * **disconnect-after-frame(N)** — the server severs a connection once
//!   N frames were written on it, losing an in-flight reply;
//! * **slow-loris(bytes/s)** — the client trickles one request frame so
//!   the server's read deadline must evict it;
//! * **corrupt-frame-checksum** — one client frame goes out with a broken
//!   checksum the receiver must refuse (`NT001`);
//! * **connect-refused(count)** — the client's first N connect attempts
//!   fail, exercising retry-with-backoff.

/// A plan of faults to inject into a training run or a serving process.
/// With the `fault-inject` feature disabled this is always the empty
/// plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    #[cfg(feature = "fault-inject")]
    nan_grad_epoch: Option<usize>,
    #[cfg(feature = "fault-inject")]
    kill_worker: Option<(usize, usize)>,
    #[cfg(feature = "fault-inject")]
    latency_multiplier: Option<u64>,
    #[cfg(feature = "fault-inject")]
    queue_saturation: bool,
    #[cfg(feature = "fault-inject")]
    cache_poison_request: Option<u64>,
    #[cfg(feature = "fault-inject")]
    kill_after_record: Option<u64>,
    #[cfg(feature = "fault-inject")]
    store_disk_full_after: Option<u64>,
    #[cfg(feature = "fault-inject")]
    kill_mid_compaction: bool,
    #[cfg(feature = "fault-inject")]
    net_disconnect_after_frames: Option<u64>,
    #[cfg(feature = "fault-inject")]
    net_slow_loris_bytes_per_s: Option<u64>,
    #[cfg(feature = "fault-inject")]
    net_corrupt_frame_checksum: Option<u64>,
    #[cfg(feature = "fault-inject")]
    net_connect_refused: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Poisons the summed gradient with a NaN once, at the given epoch —
    /// a transient numeric fault the divergence guard must catch and roll
    /// back from.
    #[cfg(feature = "fault-inject")]
    pub fn with_nan_grads(mut self, epoch: usize) -> Self {
        self.nan_grad_epoch = Some(epoch);
        self
    }

    /// Panics the given worker thread at the given epoch — a died-worker
    /// fault the parallel trainer must recover from by recomputing that
    /// worker's graph serially.
    #[cfg(feature = "fault-inject")]
    pub fn with_worker_kill(mut self, epoch: usize, worker: usize) -> Self {
        self.kill_worker = Some((epoch, worker));
        self
    }

    /// Hook: corrupts `grads` if this epoch is the planned NaN injection
    /// point. One-shot — the fault is transient, so the retry after
    /// rollback sees clean gradients.
    pub(crate) fn corrupt_grads(&mut self, epoch: usize, grads: &mut gcnt_core::GcnGrads) {
        #[cfg(feature = "fault-inject")]
        if self.nan_grad_epoch == Some(epoch) {
            self.nan_grad_epoch = None;
            if let Some(w) = grads.agg_weights.first_mut() {
                *w = f32::NAN;
            }
        }
        let _ = (epoch, grads);
    }

    /// Hook: whether the given worker should die at the given epoch.
    pub(crate) fn should_kill(&self, epoch: usize, worker: usize) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.kill_worker == Some((epoch, worker))
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = (epoch, worker);
            false
        }
    }

    /// Multiplies every embedding-row's budget cost, simulating an N×
    /// slower machine so deadline pressure is reproducible.
    #[cfg(feature = "fault-inject")]
    pub fn with_latency_multiplier(mut self, multiplier: u64) -> Self {
        self.latency_multiplier = Some(multiplier.max(1));
        self
    }

    /// Makes admission control behave as if the bounded request queue
    /// were permanently full, so every submission is rejected.
    #[cfg(feature = "fault-inject")]
    pub fn with_queue_saturation(mut self) -> Self {
        self.queue_saturation = true;
        self
    }

    /// Poisons the incremental-inference cache for the request with the
    /// given admission index (0-based): its incremental rung fails with a
    /// stale-cache error, forcing the degradation ladder down. One-shot.
    #[cfg(feature = "fault-inject")]
    pub fn with_cache_poison(mut self, request_index: u64) -> Self {
        self.cache_poison_request = Some(request_index);
        self
    }

    /// Aborts the process immediately after the write-ahead journal record
    /// with the given sequence number reaches disk — a deterministic
    /// `kill -9` between two committed batches of a flow job.
    #[cfg(feature = "fault-inject")]
    pub fn with_kill_after_record(mut self, seq: u64) -> Self {
        self.kill_after_record = Some(seq);
        self
    }

    /// Serving hook: the injected work-cost multiplier (`1` = no fault).
    pub fn latency_multiplier(&self) -> u64 {
        #[cfg(feature = "fault-inject")]
        {
            self.latency_multiplier.unwrap_or(1)
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            1
        }
    }

    /// Serving hook: whether admission control should pretend the queue
    /// is full.
    pub fn queue_saturated(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.queue_saturation
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Serving hook: whether the request with this admission index should
    /// see a poisoned incremental cache. One-shot — the poison clears once
    /// consumed, so the retry path sees a healthy cache.
    pub fn take_cache_poison(&mut self, request_index: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            if self.cache_poison_request == Some(request_index) {
                self.cache_poison_request = None;
                return true;
            }
            false
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = request_index;
            false
        }
    }

    /// Serving hook: whether the process should abort after persisting
    /// the journal record with this sequence number.
    pub fn should_kill_after_record(&self, seq: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.kill_after_record == Some(seq)
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = seq;
            false
        }
    }

    /// Fails every page-store write after the first `n` with a simulated
    /// disk-full error.
    #[cfg(feature = "fault-inject")]
    pub fn with_store_disk_full_after(mut self, n: u64) -> Self {
        self.store_disk_full_after = Some(n);
        self
    }

    /// Aborts the process between a journal compaction's store commit and
    /// its journal rewrite — a deterministic `kill -9` at the worst moment
    /// of the compaction protocol.
    #[cfg(feature = "fault-inject")]
    pub fn with_kill_mid_compaction(mut self) -> Self {
        self.kill_mid_compaction = true;
        self
    }

    /// Store hook: the injected disk-full threshold (page writes allowed
    /// before writes start failing), if any.
    pub fn store_disk_full_after(&self) -> Option<u64> {
        #[cfg(feature = "fault-inject")]
        {
            self.store_disk_full_after
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            None
        }
    }

    /// Store hook: whether the process should abort mid-compaction, after
    /// the store commit but before the journal rewrite.
    pub fn should_kill_mid_compaction(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.kill_mid_compaction
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Severs a network connection once this many frames have been
    /// written on it — the serving side drops the socket instead of
    /// writing the next frame, so a reply the client is waiting for is
    /// lost mid-job. One-shot at the consumer: the net server disarms the
    /// fault after the first severed connection, so the client's
    /// reconnect-and-resume path can be asserted deterministically.
    #[cfg(feature = "fault-inject")]
    pub fn with_net_disconnect_after_frames(mut self, frames: u64) -> Self {
        self.net_disconnect_after_frames = Some(frames);
        self
    }

    /// Trickles the bytes of the client's next request frame at the given
    /// rate instead of writing them at once — a deterministic slow-loris
    /// client the server must evict on its per-connection read deadline.
    /// One-shot: the retry after the eviction writes at full speed.
    #[cfg(feature = "fault-inject")]
    pub fn with_net_slow_loris(mut self, bytes_per_s: u64) -> Self {
        self.net_slow_loris_bytes_per_s = Some(bytes_per_s.max(1));
        self
    }

    /// Corrupts the checksum of the client's Nth written frame (0-based,
    /// counted per client across reconnects), so the receiver must refuse
    /// the frame (`NT001`) instead of decoding a torn payload. One-shot.
    #[cfg(feature = "fault-inject")]
    pub fn with_net_corrupt_frame_checksum(mut self, frame_index: u64) -> Self {
        self.net_corrupt_frame_checksum = Some(frame_index);
        self
    }

    /// Fails the client's first `count` connect attempts with a simulated
    /// connection-refused error, exercising retry-with-backoff.
    #[cfg(feature = "fault-inject")]
    pub fn with_net_connect_refused(mut self, count: u64) -> Self {
        self.net_connect_refused = Some(count);
        self
    }

    /// Net serving hook: how many written frames a connection survives
    /// before the injected disconnect severs it (`None` = no fault).
    pub fn net_disconnect_after_frames(&self) -> Option<u64> {
        #[cfg(feature = "fault-inject")]
        {
            self.net_disconnect_after_frames
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            None
        }
    }

    /// Net client hook: the trickle rate for the next frame write, if the
    /// slow-loris fault is armed. One-shot — consuming it disarms it.
    pub fn take_net_slow_loris(&mut self) -> Option<u64> {
        #[cfg(feature = "fault-inject")]
        {
            self.net_slow_loris_bytes_per_s.take()
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            None
        }
    }

    /// Net client hook: whether the frame with this write index should go
    /// out with a corrupted checksum. One-shot — the retry after the
    /// refusal writes a clean frame.
    pub fn take_net_corrupt_checksum(&mut self, frame_index: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            if self.net_corrupt_frame_checksum == Some(frame_index) {
                self.net_corrupt_frame_checksum = None;
                return true;
            }
            false
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = frame_index;
            false
        }
    }

    /// Net client hook: whether this connect attempt should fail with a
    /// simulated refusal. Decrements the remaining-refusals budget.
    pub fn take_net_connect_refused(&mut self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            match self.net_connect_refused {
                Some(0) | None => false,
                Some(n) => {
                    self.net_connect_refused = Some(n - 1);
                    true
                }
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Parses a plan from JSON, e.g.
    /// `{"latency_multiplier": 10, "kill_after_record": 1}`. Recognised
    /// keys: `nan_grad_epoch`, `kill_worker` (`[epoch, worker]`),
    /// `latency_multiplier`, `queue_saturation` (bool),
    /// `cache_poison_request`, `kill_after_record`,
    /// `store_disk_full_after`, `kill_mid_compaction` (bool),
    /// `net_disconnect_after_frames`, `net_slow_loris_bytes_per_s`,
    /// `net_corrupt_frame_checksum`, `net_connect_refused`. Unknown keys
    /// are rejected so a typo cannot silently disable a planned fault.
    ///
    /// Only available with the `fault-inject` feature: a production build
    /// cannot be handed a fault plan at all.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    #[cfg(feature = "fault-inject")]
    pub fn from_json(json: &str) -> Result<Self, String> {
        use serde::Value;

        let value: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let Value::Object(fields) = value else {
            return Err("fault plan must be a JSON object".to_string());
        };
        let as_u64 = |v: &Value, key: &str| -> Result<u64, String> {
            match v {
                Value::Number(n) => n
                    .as_u64()
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
                _ => Err(format!("`{key}` must be a non-negative integer")),
            }
        };
        let mut plan = FaultPlan::none();
        for (key, v) in &fields {
            match key.as_str() {
                "nan_grad_epoch" => plan.nan_grad_epoch = Some(as_u64(v, key)? as usize),
                "kill_worker" => match v {
                    Value::Array(pair) => match pair.as_slice() {
                        [epoch, worker] => {
                            let epoch = as_u64(epoch, key)? as usize;
                            let worker = as_u64(worker, key)? as usize;
                            plan.kill_worker = Some((epoch, worker));
                        }
                        _ => return Err("`kill_worker` must be `[epoch, worker]`".to_string()),
                    },
                    _ => return Err("`kill_worker` must be `[epoch, worker]`".to_string()),
                },
                "latency_multiplier" => {
                    plan.latency_multiplier = Some(as_u64(v, key)?.max(1));
                }
                "queue_saturation" => match v {
                    Value::Bool(b) => plan.queue_saturation = *b,
                    _ => return Err("`queue_saturation` must be a boolean".to_string()),
                },
                "cache_poison_request" => plan.cache_poison_request = Some(as_u64(v, key)?),
                "kill_after_record" => plan.kill_after_record = Some(as_u64(v, key)?),
                "store_disk_full_after" => {
                    plan.store_disk_full_after = Some(as_u64(v, key)?);
                }
                "kill_mid_compaction" => match v {
                    Value::Bool(b) => plan.kill_mid_compaction = *b,
                    _ => return Err("`kill_mid_compaction` must be a boolean".to_string()),
                },
                "net_disconnect_after_frames" => {
                    plan.net_disconnect_after_frames = Some(as_u64(v, key)?);
                }
                "net_slow_loris_bytes_per_s" => {
                    plan.net_slow_loris_bytes_per_s = Some(as_u64(v, key)?.max(1));
                }
                "net_corrupt_frame_checksum" => {
                    plan.net_corrupt_frame_checksum = Some(as_u64(v, key)?);
                }
                "net_connect_refused" => plan.net_connect_refused = Some(as_u64(v, key)?),
                other => return Err(format!("unknown fault plan field `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Truncates a file to half its length — a torn-write simulation for
/// checkpoint recovery tests.
///
/// # Panics
///
/// Panics on filesystem errors (test helper).
#[cfg(feature = "fault-inject")]
pub fn truncate_file(path: &std::path::Path) {
    let bytes = std::fs::read(path).expect("read file to truncate");
    std::fs::write(path, &bytes[..bytes.len() / 2]).expect("write truncated file");
}

/// Flips one bit at the given byte offset — a bit-rot simulation for
/// checksum tests.
///
/// # Panics
///
/// Panics on filesystem errors or an out-of-range offset (test helper).
#[cfg(feature = "fault-inject")]
pub fn flip_byte(path: &std::path::Path, offset: usize) {
    let mut bytes = std::fs::read(path).expect("read file to corrupt");
    bytes[offset] ^= 0x01;
    std::fs::write(path, bytes).expect("write corrupted file");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut plan = FaultPlan::none();
        assert!(!plan.should_kill(0, 0));
        assert_eq!(plan.latency_multiplier(), 1);
        assert!(!plan.queue_saturated());
        assert!(!plan.take_cache_poison(0));
        assert!(!plan.should_kill_after_record(0));
        assert_eq!(plan.store_disk_full_after(), None);
        assert!(!plan.should_kill_mid_compaction());
        assert_eq!(plan.net_disconnect_after_frames(), None);
        assert_eq!(plan.take_net_slow_loris(), None);
        assert!(!plan.take_net_corrupt_checksum(0));
        assert!(!plan.take_net_connect_refused());
        let gcn = gcnt_core::Gcn::new(
            &gcnt_core::GcnConfig {
                embed_dims: vec![2],
                fc_dims: vec![2],
                ..gcnt_core::GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(1),
        );
        let mut grads = gcn.zero_grads();
        plan.corrupt_grads(0, &mut grads);
        assert!(grads.is_finite());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn planned_faults_fire_once() {
        let mut plan = FaultPlan::none().with_nan_grads(2).with_worker_kill(1, 0);
        assert!(plan.should_kill(1, 0));
        assert!(!plan.should_kill(1, 1));
        assert!(!plan.should_kill(2, 0));
        let gcn = gcnt_core::Gcn::new(
            &gcnt_core::GcnConfig {
                embed_dims: vec![2],
                fc_dims: vec![2],
                ..gcnt_core::GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(1),
        );
        let mut grads = gcn.zero_grads();
        plan.corrupt_grads(1, &mut grads);
        assert!(grads.is_finite(), "wrong epoch must not fire");
        plan.corrupt_grads(2, &mut grads);
        assert!(!grads.is_finite(), "planned epoch must fire");
        let mut grads2 = gcn.zero_grads();
        plan.corrupt_grads(2, &mut grads2);
        assert!(grads2.is_finite(), "fault is one-shot");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn serving_faults_fire_deterministically() {
        let mut plan = FaultPlan::none()
            .with_latency_multiplier(10)
            .with_queue_saturation()
            .with_cache_poison(2)
            .with_kill_after_record(4);
        assert_eq!(plan.latency_multiplier(), 10);
        assert!(plan.queue_saturated());
        assert!(!plan.take_cache_poison(1));
        assert!(plan.take_cache_poison(2));
        assert!(!plan.take_cache_poison(2), "cache poison is one-shot");
        assert!(plan.should_kill_after_record(4));
        assert!(!plan.should_kill_after_record(3));
        // A zero multiplier clamps to the no-fault value.
        assert_eq!(
            FaultPlan::none()
                .with_latency_multiplier(0)
                .latency_multiplier(),
            1
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn network_faults_fire_deterministically() {
        let mut plan = FaultPlan::none()
            .with_net_disconnect_after_frames(3)
            .with_net_slow_loris(20)
            .with_net_corrupt_frame_checksum(1)
            .with_net_connect_refused(2);
        assert_eq!(plan.net_disconnect_after_frames(), Some(3));
        assert_eq!(plan.take_net_slow_loris(), Some(20));
        assert_eq!(plan.take_net_slow_loris(), None, "slow loris is one-shot");
        assert!(!plan.take_net_corrupt_checksum(0));
        assert!(plan.take_net_corrupt_checksum(1));
        assert!(
            !plan.take_net_corrupt_checksum(1),
            "checksum corruption is one-shot"
        );
        assert!(plan.take_net_connect_refused());
        assert!(plan.take_net_connect_refused());
        assert!(
            !plan.take_net_connect_refused(),
            "refusal budget is exhausted"
        );
        // A zero trickle rate clamps to one byte per second.
        assert_eq!(
            FaultPlan::none()
                .with_net_slow_loris(0)
                .take_net_slow_loris(),
            Some(1)
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn plan_parses_from_json() {
        let plan = FaultPlan::from_json(
            r#"{"latency_multiplier": 10, "queue_saturation": true,
                "cache_poison_request": 3, "kill_after_record": 1,
                "nan_grad_epoch": 2, "kill_worker": [1, 0],
                "store_disk_full_after": 2, "kill_mid_compaction": true}"#,
        )
        .unwrap();
        assert_eq!(plan.latency_multiplier(), 10);
        assert!(plan.queue_saturated());
        assert!(plan.should_kill_after_record(1));
        assert!(plan.should_kill(1, 0));
        assert_eq!(plan.store_disk_full_after(), Some(2));
        assert!(plan.should_kill_mid_compaction());
        assert_eq!(
            FaultPlan::none()
                .with_store_disk_full_after(5)
                .store_disk_full_after(),
            Some(5)
        );
        assert!(FaultPlan::none()
            .with_kill_mid_compaction()
            .should_kill_mid_compaction());

        let mut net_plan = FaultPlan::from_json(
            r#"{"net_disconnect_after_frames": 2, "net_slow_loris_bytes_per_s": 16,
                "net_corrupt_frame_checksum": 0, "net_connect_refused": 3}"#,
        )
        .unwrap();
        assert_eq!(net_plan.net_disconnect_after_frames(), Some(2));
        assert_eq!(net_plan.take_net_slow_loris(), Some(16));
        assert!(net_plan.take_net_corrupt_checksum(0));
        assert!(net_plan.take_net_connect_refused());

        assert_eq!(FaultPlan::from_json("{}").unwrap().latency_multiplier(), 1);
        assert!(FaultPlan::from_json(r#"{"typo_field": 1}"#).is_err());
        assert!(FaultPlan::from_json(r#"{"latency_multiplier": -4}"#).is_err());
        assert!(FaultPlan::from_json(r#"{"kill_worker": [1]}"#).is_err());
        assert!(FaultPlan::from_json("[]").is_err());
    }
}
