//! Checkpointed, guarded multi-stage cascade training.
//!
//! [`MultiStageTrainer`] reproduces the exact stage loop of
//! [`gcnt_core::MultiStageGcn::train`] — same RNG draws, same per-stage
//! positive weight, same filtering — but runs each stage through the
//! guarded [`TrainSession`] and checkpoints both within stages (epoch
//! granularity) and at stage boundaries. Because the only RNG use is the
//! per-stage weight initialisation, persisting the RNG state alongside
//! the completed stages makes a resumed run bit-for-bit identical to an
//! uninterrupted one.

use gcnt_core::{Gcn, GraphData, MultiStageConfig, MultiStageGcn, StageReport, TrainConfig};
use gcnt_lint::LintReport;

use crate::checkpoint::{CheckpointStore, TrainState};
use crate::fault::FaultPlan;
use crate::guard::{GuardConfig, ResumePoint, RollbackEvent, TrainError, TrainSession};

/// Result of a resilient cascade run.
#[derive(Debug, Clone)]
pub struct MultiStageOutcome {
    /// The trained cascade.
    pub model: MultiStageGcn,
    /// Per-stage reports (identical to the plain trainer's).
    pub reports: Vec<StageReport>,
    /// `(stage, epoch)` the run resumed from, if a checkpoint was used.
    pub resumed_from: Option<(usize, usize)>,
    /// Guard rollbacks across all stages.
    pub rollbacks: Vec<RollbackEvent>,
    /// Died-and-recovered workers across all stages, as `(epoch, worker)`.
    pub recovered_workers: Vec<(usize, usize)>,
    /// Findings from checkpoints that were rejected during resume.
    pub load_findings: LintReport,
}

/// Drives multi-stage training with checkpoint/resume and divergence
/// guards.
#[derive(Debug)]
pub struct MultiStageTrainer<'a> {
    /// Cascade configuration (shared with the plain trainer).
    pub cfg: MultiStageConfig,
    /// Guard policy for every stage.
    pub guard: GuardConfig,
    /// Where checkpoints go (`None` disables checkpointing).
    pub store: Option<&'a CheckpointStore>,
    /// Restore the newest usable checkpoint before training.
    pub resume: bool,
    /// Train each stage with one worker thread per graph.
    pub parallel: bool,
    /// Faults to inject (empty outside recovery tests).
    pub fault: FaultPlan,
}

impl<'a> MultiStageTrainer<'a> {
    /// A trainer with default guard policy and no checkpointing.
    pub fn new(cfg: MultiStageConfig) -> Self {
        MultiStageTrainer {
            cfg,
            guard: GuardConfig::default(),
            store: None,
            resume: false,
            parallel: false,
            fault: FaultPlan::none(),
        }
    }

    /// Trains the cascade. Without a store and without faults this is
    /// bit-for-bit identical to [`MultiStageGcn::train`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] when a stage exhausts its retry
    /// budget, and checkpoint/tensor failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or any graph is unlabeled.
    pub fn run(&mut self, graphs: &[&GraphData]) -> Result<MultiStageOutcome, TrainError> {
        assert!(!graphs.is_empty(), "need at least one training graph");
        let mut rng = gcnt_nn::seeded_rng(self.cfg.seed);
        let mut active: Vec<Vec<usize>> = graphs
            .iter()
            .map(|g| (0..g.node_count()).collect())
            .collect();
        let mut completed: Vec<Gcn> = Vec::new();
        let mut reports: Vec<StageReport> = Vec::new();
        let mut start_stage = 0usize;
        let mut mid_stage: Option<(Gcn, ResumePoint)> = None;
        let mut resumed_from = None;
        let mut load_findings = LintReport::new();

        if self.resume {
            if let Some(store) = self.store {
                // The cascade trains with plain SGD (no optimizer state),
                // but the RNG is mandatory for deterministic resumption.
                let (state, findings) = store.load_latest(false)?;
                load_findings = findings;
                match state {
                    Some(state) if state.rng.is_some() => {
                        if let Some(saved) = state.rng.clone() {
                            rng = saved;
                        }
                        active = state.active.clone();
                        completed = state.completed.clone();
                        reports = state.reports.clone();
                        start_stage = state.stage;
                        resumed_from = Some((state.stage, state.epoch));
                        if state.epoch > 0 && state.stage < self.cfg.stages {
                            mid_stage = Some((
                                state.model.clone(),
                                ResumePoint {
                                    epoch: state.epoch,
                                    lr: state.lr,
                                    retries: state.retries_used,
                                    history: state.history.clone(),
                                    optimizer: state.optimizer.clone(),
                                },
                            ));
                        }
                    }
                    Some(state) => {
                        load_findings.report(
                            gcnt_lint::RuleId::MissingState,
                            format!("stage {} checkpoint", state.stage),
                            "no RNG state; cascade resume would not be \
                             deterministic, starting fresh",
                        );
                    }
                    None => {}
                }
            }
        }

        let mut rollbacks = Vec::new();
        let mut recovered_workers = Vec::new();
        for stage in start_stage..self.cfg.stages {
            let total_active: usize = active.iter().map(Vec::len).sum();
            let positives: usize = graphs
                .iter()
                .zip(&active)
                .map(|(g, mask)| {
                    mask.iter()
                        .filter(|&&i| g.labels.get(i) == Some(&1))
                        .count()
                })
                .sum();
            let negatives = total_active.saturating_sub(positives);
            let pos_weight = if positives == 0 {
                1.0
            } else {
                (negatives as f32 / positives as f32).clamp(1.0, self.cfg.max_pos_weight)
            };
            let (mut gcn, resume_point) = match mid_stage.take() {
                Some((model, point)) => (model, Some(point)),
                None => (Gcn::new(&self.cfg.gcn, &mut rng), None),
            };
            let mut session = TrainSession {
                cfg: TrainConfig {
                    epochs: self.cfg.epochs_per_stage,
                    lr: self.cfg.lr,
                    pos_weight,
                    momentum: 0.0,
                },
                guard: self.guard,
                store: self.store,
                resume: false,
                parallel: self.parallel,
                fault: std::mem::take(&mut self.fault),
            };
            let outcome = session.run_stage(
                &mut gcn,
                graphs,
                &active,
                resume_point,
                |epoch, model, optimizer, lr, retries, history| TrainState {
                    stage,
                    epoch,
                    lr,
                    retries_used: retries,
                    model: model.clone(),
                    optimizer: optimizer.clone(),
                    history: history.to_vec(),
                    completed: completed.clone(),
                    active: active.clone(),
                    reports: reports.clone(),
                    rng: Some(rng.clone()),
                },
            );
            self.fault = std::mem::take(&mut session.fault);
            let outcome = outcome?;
            rollbacks.extend(outcome.rollbacks);
            recovered_workers.extend(outcome.recovered_workers);

            // Filter confident negatives, exactly as the plain trainer.
            let mut filtered = 0usize;
            for (g, mask) in graphs.iter().zip(active.iter_mut()) {
                let probs = gcn.predict_proba(&g.tensors, &g.features)?;
                let before = mask.len();
                mask.retain(|&i| {
                    probs
                        .get(i)
                        .is_some_and(|&p| p >= self.cfg.filter_threshold)
                });
                filtered += before - mask.len();
            }
            reports.push(StageReport {
                stage,
                active: total_active,
                positives,
                pos_weight,
                filtered,
            });
            completed.push(gcn);

            if let (Some(store), Some(last)) = (self.store, completed.last()) {
                store.save(&TrainState {
                    stage: stage + 1,
                    epoch: 0,
                    lr: self.cfg.lr,
                    retries_used: 0,
                    model: last.clone(),
                    optimizer: None,
                    history: Vec::new(),
                    completed: completed.clone(),
                    active: active.clone(),
                    reports: reports.clone(),
                    rng: Some(rng.clone()),
                })?;
            }
        }

        Ok(MultiStageOutcome {
            model: MultiStageGcn::from_stages(completed, self.cfg.filter_threshold),
            reports,
            resumed_from,
            rollbacks,
            recovered_workers,
            load_findings,
        })
    }
}
