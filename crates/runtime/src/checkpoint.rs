//! Versioned, checksummed training checkpoints with atomic writes and
//! corruption-tolerant loading.
//!
//! # File format
//!
//! A checkpoint is a JSON object with three fields:
//!
//! ```json
//! { "version": 1, "checksum": "<fnv1a64 hex>", "payload": "<TrainState JSON>" }
//! ```
//!
//! The payload is stored as a *string* so the checksum is defined over an
//! exact byte sequence rather than over a re-serialisation of a parsed
//! tree. On load the checksum is recomputed over the payload string and
//! compared before the payload is parsed at all; a flipped bit anywhere in
//! the state fires `CK001` instead of producing a silently-wrong model.
//!
//! # Durability
//!
//! [`CheckpointStore::save`] writes to a temp file in the same directory,
//! fsyncs it, and renames it over the final name, so a crash mid-write
//! leaves either the old checkpoint set or the new one — never a torn
//! file under a valid name. The store prunes itself to the newest `keep`
//! checkpoints after each save.
//!
//! # Recovery
//!
//! [`CheckpointStore::load_latest`] walks checkpoints newest-to-oldest and
//! returns the first one that passes every integrity check (`CK001`
//! checksum, `CK002` version, `CK003` required state, `MD001`/`MD002`
//! restored-model lint), collecting the findings of any rejected files so
//! the caller can report *why* older state was used.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gcnt_core::{EpochStats, Gcn, StageReport};
use gcnt_lint::{lint_checkpoint_meta, lint_gcn, lint_optimizer_shape, CheckpointMeta, LintReport};
use gcnt_nn::ModelOptimizer;
use rand_chacha::ChaCha8Rng;

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything needed to resume a training run bit-for-bit: the cursor
/// (stage and epoch), the effective hyper-parameters after any guard
/// backoff, the model and optimizer, per-epoch history, and — for
/// multi-stage runs — the completed stages, active masks, stage reports,
/// and the RNG that seeds the next stage's weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainState {
    /// Cascade stage this state belongs to (0 for single-model runs).
    pub stage: usize,
    /// Next epoch to run within the stage (epochs `0..epoch` are done).
    pub epoch: usize,
    /// Effective learning rate (after any divergence-guard backoff).
    pub lr: f32,
    /// Guard retries consumed so far.
    pub retries_used: usize,
    /// The model being trained.
    pub model: Gcn,
    /// Momentum/Adam state, absent for plain SGD.
    pub optimizer: Option<ModelOptimizer>,
    /// Per-epoch statistics of the current stage so far.
    pub history: Vec<EpochStats>,
    /// Fully trained earlier cascade stages.
    pub completed: Vec<Gcn>,
    /// Per-graph active node masks entering the current stage.
    pub active: Vec<Vec<usize>>,
    /// Reports of completed stages.
    pub reports: Vec<StageReport>,
    /// RNG state for the next stage's weight initialisation; `None` for
    /// runs that never touch an RNG after the model exists.
    pub rng: Option<ChaCha8Rng>,
}

impl TrainState {
    /// State for a single-model (non-cascade) run: stage 0 and no cascade
    /// context.
    pub fn single(
        epoch: usize,
        model: &Gcn,
        optimizer: &Option<ModelOptimizer>,
        lr: f32,
        retries_used: usize,
        history: &[EpochStats],
    ) -> Self {
        TrainState {
            stage: 0,
            epoch,
            lr,
            retries_used,
            model: model.clone(),
            optimizer: optimizer.clone(),
            history: history.to_vec(),
            completed: Vec::new(),
            active: Vec::new(),
            reports: Vec::new(),
            rng: None,
        }
    }
}

/// The on-disk envelope: see the module docs for the format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointFile {
    version: u32,
    checksum: String,
    payload: String,
}

/// Typed checkpoint failures. `Invalid` carries the lint findings
/// (`CK`/`MD` rules) that rejected the file.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is not parseable as a checkpoint (truncated write, foreign
    /// file, or garbage payload).
    Malformed {
        /// Path of the unparseable file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The file parsed but failed integrity validation; the report holds
    /// the `CK`/`MD` findings.
    Invalid {
        /// Path of the rejected file.
        path: PathBuf,
        /// The findings that rejected it.
        report: Box<LintReport>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint io error at {}: {source}", path.display())
            }
            CheckpointError::Malformed { path, detail } => {
                write!(f, "malformed checkpoint {}: {detail}", path.display())
            }
            CheckpointError::Invalid { path, report } => {
                write!(
                    f,
                    "invalid checkpoint {}: {}",
                    path.display(),
                    report.to_string().trim_end()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash — small, dependency-free, and byte-order stable,
/// which is all a corruption check needs (this is not a cryptographic
/// integrity guarantee). Re-exported from `gcnt-store`, which owns the
/// checksum primitive the whole workspace shares.
pub use gcnt_store::fnv1a64;

fn checksum_hex(payload: &str) -> String {
    format!("{:016x}", fnv1a64(payload.as_bytes()))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, then rename over the final name. Readers never observe a torn
/// file, and a crash mid-write leaves the previous contents intact.
/// Delegates to `gcnt-store`'s implementation, mapping its error into
/// [`CheckpointError`] to keep this crate's public API unchanged.
///
/// # Errors
///
/// Returns the underlying io error, tagged with the path it hit.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    gcnt_store::atomic_write(path, bytes).map_err(|e| match e {
        gcnt_store::StoreError::Io { path, source } => CheckpointError::Io { path, source },
        other => CheckpointError::Malformed {
            path: path.to_path_buf(),
            detail: other.to_string(),
        },
    })
}

/// A directory of checkpoints, pruned to the newest `keep` files.
///
/// File names encode the cursor (`ckpt-SSSS-EEEEEE.json`), so
/// lexicographic order is (stage, epoch) order and "latest" needs no
/// parsing.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory that retains the
    /// newest `keep` checkpoints (`keep` is clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns an io error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| CheckpointError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The directory this store writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint paths, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an io error if the directory cannot be read.
    pub fn list(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let entries = fs::read_dir(&self.dir).map_err(|source| CheckpointError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut out: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
            })
            .collect();
        out.sort();
        Ok(out)
    }

    /// Saves a checkpoint atomically and prunes older ones beyond `keep`.
    /// Returns the path written.
    ///
    /// # Errors
    ///
    /// Returns an io error if writing fails, or a serialization failure as
    /// `Malformed` (which indicates non-finite state reached the save
    /// path — the divergence guard exists to prevent exactly that).
    pub fn save(&self, state: &TrainState) -> Result<PathBuf, CheckpointError> {
        let path = self
            .dir
            .join(format!("ckpt-{:04}-{:06}.json", state.stage, state.epoch));
        let payload = serde_json::to_string(state).map_err(|e| CheckpointError::Malformed {
            path: path.clone(),
            detail: format!("state serialization failed: {e}"),
        })?;
        let file = CheckpointFile {
            version: CHECKPOINT_VERSION,
            checksum: checksum_hex(&payload),
            payload,
        };
        let bytes = serde_json::to_string(&file).map_err(|e| CheckpointError::Malformed {
            path: path.clone(),
            detail: format!("envelope serialization failed: {e}"),
        })?;
        atomic_write(&path, bytes.as_bytes())?;
        gcnt_obs::global().incr(gcnt_obs::counters::RUNTIME_CHECKPOINTS_WRITTEN);
        // Prune, never removing the file just written.
        let files = self.list()?;
        let excess = files.len().saturating_sub(self.keep);
        for old in files.iter().take(excess) {
            if old != &path {
                let _ = fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Loads and fully validates one checkpoint file.
    ///
    /// `require_optimizer` marks optimizer state as mandatory (a momentum
    /// run cannot resume bit-for-bit without its velocity), firing `CK003`
    /// when absent.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Malformed`] if it cannot be parsed, and
    /// [`CheckpointError::Invalid`] with the lint findings if any
    /// integrity check fails.
    pub fn load(
        &self,
        path: &Path,
        require_optimizer: bool,
    ) -> Result<TrainState, CheckpointError> {
        let text = fs::read_to_string(path).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let file: CheckpointFile =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Malformed {
                path: path.to_path_buf(),
                detail: format!("envelope parse failed: {e}"),
            })?;
        let mut report = lint_checkpoint_meta(&CheckpointMeta {
            path: path.display().to_string(),
            version: file.version,
            supported_version: CHECKPOINT_VERSION,
            stored_checksum: file.checksum.clone(),
            computed_checksum: checksum_hex(&file.payload),
            missing_state: Vec::new(),
        });
        if report.has_errors() {
            return Err(CheckpointError::Invalid {
                path: path.to_path_buf(),
                report: Box::new(report),
            });
        }
        let state: TrainState =
            serde_json::from_str(&file.payload).map_err(|e| CheckpointError::Malformed {
                path: path.to_path_buf(),
                detail: format!("payload parse failed: {e}"),
            })?;
        // The payload parsed — now lint the restored model state (MD rules)
        // and the optimizer contract (CK003).
        report.merge(lint_gcn(&state.model, "checkpoint.model"));
        for stage in &state.completed {
            report.merge(lint_gcn(stage, "checkpoint.completed"));
        }
        match &state.optimizer {
            Some(opt) => {
                report.merge(lint_optimizer_shape(
                    &path.display().to_string(),
                    &state.model.param_lens(),
                    &opt.param_lens(),
                ));
                if !opt.is_finite() {
                    report.report(
                        gcnt_lint::RuleId::WeightNan,
                        path.display().to_string(),
                        "optimizer state holds a NaN or infinite value",
                    );
                }
            }
            None if require_optimizer => {
                report.merge(lint_checkpoint_meta(&CheckpointMeta {
                    path: path.display().to_string(),
                    version: file.version,
                    supported_version: CHECKPOINT_VERSION,
                    stored_checksum: file.checksum.clone(),
                    computed_checksum: file.checksum.clone(),
                    missing_state: vec!["optimizer".to_string()],
                }));
            }
            None => {}
        }
        if report.has_errors() {
            return Err(CheckpointError::Invalid {
                path: path.to_path_buf(),
                report: Box::new(report),
            });
        }
        gcnt_obs::global().incr(gcnt_obs::counters::RUNTIME_CHECKPOINTS_LOADED);
        Ok(state)
    }

    /// Loads the newest checkpoint that passes validation, falling back
    /// to older ones when the newest is corrupt.
    ///
    /// Returns the restored state (or `None` when no usable checkpoint
    /// exists) plus the accumulated findings of every rejected file —
    /// unparseable files are reported as `CK001` (their integrity cannot
    /// be established).
    ///
    /// # Errors
    ///
    /// Returns an io error only if the directory itself cannot be listed;
    /// individual bad files are findings, not errors.
    pub fn load_latest(
        &self,
        require_optimizer: bool,
    ) -> Result<(Option<TrainState>, LintReport), CheckpointError> {
        let mut findings = LintReport::new();
        for path in self.list()?.iter().rev() {
            match self.load(path, require_optimizer) {
                Ok(state) => return Ok((Some(state), findings)),
                Err(CheckpointError::Invalid { report, .. }) => findings.merge(*report),
                Err(e) => findings.report(
                    gcnt_lint::RuleId::ChecksumMismatch,
                    path.display().to_string(),
                    format!("unreadable checkpoint skipped: {e}"),
                ),
            }
        }
        Ok((None, findings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::GcnConfig;

    fn tiny_state(stage: usize, epoch: usize) -> TrainState {
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![3],
                fc_dims: vec![3],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(9),
        );
        TrainState {
            stage,
            epoch,
            lr: 0.05,
            retries_used: 0,
            model: gcn,
            optimizer: None,
            history: vec![],
            completed: vec![],
            active: vec![vec![0, 1, 2]],
            reports: vec![],
            rng: Some(gcnt_nn::seeded_rng(9)),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcnt-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(checksum_hex("a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let state = tiny_state(0, 10);
        let path = store.save(&state).unwrap();
        assert!(path.to_str().unwrap().contains("ckpt-0000-000010"));
        let back = store.load(&path, false).unwrap();
        assert_eq!(back, state);
        // No stray temp file survives.
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_k() {
        let dir = temp_dir("prune");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        for epoch in [1, 2, 3, 4] {
            store.save(&tiny_state(0, epoch)).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[1].to_str().unwrap().contains("000004"));
        assert!(files[0].to_str().unwrap().contains("000003"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_prefers_newest() {
        let dir = temp_dir("latest");
        let store = CheckpointStore::open(&dir, 5).unwrap();
        store.save(&tiny_state(0, 5)).unwrap();
        store.save(&tiny_state(1, 0)).unwrap();
        let (state, findings) = store.load_latest(false).unwrap();
        assert_eq!(state.unwrap().stage, 1);
        assert!(findings.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_returns_none() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::open(&dir, 5).unwrap();
        let (state, findings) = store.load_latest(false).unwrap();
        assert!(state.is_none());
        assert!(findings.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }
}
