//! `gcnt-runtime`: the resilience layer of the GCN testability
//! workspace.
//!
//! Long training runs and insertion flows fail in practice: a worker
//! thread dies, a learning rate diverges, a machine goes down mid-write.
//! This crate makes those failures recoverable instead of fatal:
//!
//! - **Checkpoint/resume** ([`CheckpointStore`], [`TrainState`]):
//!   versioned, checksummed training checkpoints — model weights,
//!   optimizer state, RNG state, and the epoch/stage cursor — written
//!   atomically (temp file + fsync + rename) and pruned to the newest
//!   `keep` files. A resumed run is bit-for-bit identical to an
//!   uninterrupted one.
//! - **Divergence guards** ([`TrainSession`], [`GuardConfig`]): every
//!   epoch is checked for NaN/Inf loss, loss spikes, and exploding
//!   gradient norms; a violation rolls the model back to the last good
//!   state, backs off the learning rate, and retries within a bounded
//!   budget, surfacing [`TrainError`] when the budget is exhausted.
//!   Checkpoints are validated on load with the linter's `CK` and `MD`
//!   rule families, falling back to older checkpoints on corruption.
//! - **Fault injection** ([`FaultPlan`], `fault-inject` feature):
//!   deterministic, named injection points — kill a worker thread,
//!   poison a gradient with NaN, corrupt a checkpoint file — so the
//!   recovery paths are tested, not hoped for.
//!
//! [`MultiStageTrainer`] applies all three to the paper's multi-stage
//! cascade (§3.3), checkpointing at epoch and stage granularity.
//!
//! # Examples
//!
//! Guarded training with checkpoints, then a bit-identical resume:
//!
//! ```no_run
//! use gcnt_core::{GraphData, MultiStageConfig};
//! use gcnt_runtime::{CheckpointStore, MultiStageTrainer};
//! # fn get_training_data() -> Vec<GraphData> { unimplemented!() }
//!
//! let graphs = get_training_data();
//! let refs: Vec<&GraphData> = graphs.iter().collect();
//! let store = CheckpointStore::open("checkpoints", 3)?;
//! let mut trainer = MultiStageTrainer::new(MultiStageConfig::default());
//! trainer.store = Some(&store);
//! trainer.resume = true; // picks up where a killed run left off
//! let outcome = trainer.run(&refs)?;
//! println!("trained {} stages", outcome.model.stages().len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod checkpoint;
mod fault;
mod guard;
mod multistage;

pub use checkpoint::{
    atomic_write, fnv1a64, CheckpointError, CheckpointStore, TrainState, CHECKPOINT_VERSION,
};
pub use fault::FaultPlan;
#[cfg(feature = "fault-inject")]
pub use fault::{flip_byte, truncate_file};
pub use guard::{
    DivergenceCause, GuardConfig, GuardedOutcome, ResumePoint, RollbackEvent, TrainError,
    TrainSession,
};
pub use multistage::{MultiStageOutcome, MultiStageTrainer};
