//! Divergence guards: detect NaN/Inf losses, loss spikes, and exploding
//! gradients during training; roll back to the last good state with a
//! learning-rate backoff and a bounded retry budget.
//!
//! The guarded epoch loop is built on [`gcnt_core::epoch_grads`] — the
//! same kernel the plain trainers use — so a guarded run that never
//! trips a guard is bit-for-bit identical to [`gcnt_core::train`] (and,
//! in parallel mode, to [`gcnt_core::train_parallel`]).

use std::fmt;

use crossbeam::thread;

use gcnt_core::{
    apply_update, epoch_grads, masked_loss_grads, optimizer_for, Confusion, EpochStats, Gcn,
    GcnGrads, GraphData, TrainConfig,
};
use gcnt_nn::ModelOptimizer;
use gcnt_tensor::TensorError;

use crate::checkpoint::{CheckpointError, CheckpointStore, TrainState};
use crate::fault::FaultPlan;

/// Divergence-guard policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Rollback budget: after this many rollbacks the run fails with
    /// [`TrainError::Diverged`] instead of retrying further.
    pub max_retries: usize,
    /// An epoch whose loss exceeds `spike_factor * previous_loss` is a
    /// divergence (checked once a previous loss exists).
    pub spike_factor: f32,
    /// Global gradient L2-norm limit; above it the gradient is exploding.
    pub grad_limit: f32,
    /// Learning-rate multiplier applied on each rollback.
    pub lr_backoff: f32,
    /// Save a checkpoint every this many completed epochs (0 = only at
    /// the end of the stage). Ignored without a store.
    pub checkpoint_every: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_retries: 8,
            spike_factor: 4.0,
            grad_limit: 1e4,
            lr_backoff: 0.5,
            checkpoint_every: 25,
        }
    }
}

/// What tripped a divergence guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceCause {
    /// The epoch loss was NaN or infinite.
    NonFiniteLoss,
    /// A gradient value was NaN or infinite.
    NonFiniteGrad,
    /// The loss jumped past `spike_factor` times the previous epoch's.
    LossSpike {
        /// Previous epoch's loss.
        previous: f32,
        /// This epoch's loss.
        current: f32,
    },
    /// The global gradient norm exceeded the limit.
    ExplodingGrad {
        /// Observed global L2 norm.
        norm: f32,
        /// Configured limit.
        limit: f32,
    },
}

impl fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceCause::NonFiniteLoss => write!(f, "loss is NaN or infinite"),
            DivergenceCause::NonFiniteGrad => write!(f, "gradient holds a NaN or infinite value"),
            DivergenceCause::LossSpike { previous, current } => {
                write!(f, "loss spiked {previous} -> {current}")
            }
            DivergenceCause::ExplodingGrad { norm, limit } => {
                write!(f, "gradient norm {norm} exceeds limit {limit}")
            }
        }
    }
}

/// One rollback performed by the guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollbackEvent {
    /// Epoch at which divergence was detected.
    pub epoch: usize,
    /// What tripped the guard.
    pub cause: DivergenceCause,
    /// Learning rate after the backoff.
    pub lr_after: f32,
}

/// Typed training failure.
#[derive(Debug)]
pub enum TrainError {
    /// The retry budget is exhausted; training cannot proceed.
    Diverged {
        /// Epoch at which the final divergence was detected.
        epoch: usize,
        /// What tripped the guard.
        cause: DivergenceCause,
        /// Rollbacks consumed before giving up.
        retries: usize,
    },
    /// A checkpoint operation failed.
    Checkpoint(CheckpointError),
    /// A tensor-shape failure from the epoch computation.
    Tensor(TensorError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                cause,
                retries,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} retries: {cause}"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::Tensor(e) => write!(f, "tensor failure: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Tensor(e) => Some(e),
            TrainError::Diverged { .. } => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

/// Result of a guarded run.
#[derive(Debug, Clone)]
pub struct GuardedOutcome {
    /// Per-epoch statistics (includes epochs restored from a checkpoint).
    pub history: Vec<EpochStats>,
    /// Rollbacks performed, in order.
    pub rollbacks: Vec<RollbackEvent>,
    /// Workers that died and whose graphs were recomputed serially, as
    /// `(epoch, worker)` pairs.
    pub recovered_workers: Vec<(usize, usize)>,
    /// Guard retries consumed.
    pub retries_used: usize,
    /// Effective learning rate at the end of the run.
    pub final_lr: f32,
    /// Epoch the run resumed from, if it restored a checkpoint.
    pub resumed_from: Option<usize>,
}

/// Where within a stage to pick up a restored run.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// Next epoch to run.
    pub epoch: usize,
    /// Effective learning rate.
    pub lr: f32,
    /// Guard retries already consumed.
    pub retries: usize,
    /// History of the completed epochs.
    pub history: Vec<EpochStats>,
    /// Restored optimizer state.
    pub optimizer: Option<ModelOptimizer>,
}

/// A guarded, checkpointing, optionally parallel training session for one
/// model. See [`crate::MultiStageTrainer`] for the cascade-level driver.
#[derive(Debug)]
pub struct TrainSession<'a> {
    /// Training hyper-parameters (`lr` is the starting rate; the guard
    /// may back it off).
    pub cfg: TrainConfig,
    /// Guard policy.
    pub guard: GuardConfig,
    /// Where to write checkpoints (`None` = keep everything in memory).
    pub store: Option<&'a CheckpointStore>,
    /// Restore the newest usable checkpoint before training.
    pub resume: bool,
    /// Use one worker thread per graph (bit-identical to serial).
    pub parallel: bool,
    /// Faults to inject (empty outside recovery tests).
    pub fault: FaultPlan,
}

impl<'a> TrainSession<'a> {
    /// A session with default guard policy and no checkpointing.
    pub fn new(cfg: TrainConfig) -> Self {
        TrainSession {
            cfg,
            guard: GuardConfig::default(),
            store: None,
            resume: false,
            parallel: false,
            fault: FaultPlan::none(),
        }
    }

    /// Runs guarded training of a single model, resuming from the
    /// session's store when `resume` is set.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] when the retry budget is
    /// exhausted, and checkpoint/tensor failures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` and `masks` lengths differ or a graph is
    /// unlabeled.
    pub fn run(
        &mut self,
        gcn: &mut Gcn,
        graphs: &[&GraphData],
        masks: &[Vec<usize>],
    ) -> Result<GuardedOutcome, TrainError> {
        let mut resume_point = None;
        if self.resume {
            if let Some(store) = self.store {
                let require_optimizer = self.cfg.momentum != 0.0;
                let (state, _findings) = store.load_latest(require_optimizer)?;
                if let Some(state) = state {
                    *gcn = state.model.clone();
                    resume_point = Some(ResumePoint {
                        epoch: state.epoch,
                        lr: state.lr,
                        retries: state.retries_used,
                        history: state.history.clone(),
                        optimizer: state.optimizer.clone(),
                    });
                }
            }
        }
        self.run_stage(gcn, graphs, masks, resume_point, TrainState::single)
    }

    /// The guarded epoch loop. `resume` positions the loop mid-stage;
    /// `snapshot` builds the full checkpoint payload (a cascade driver
    /// embeds its stage context here).
    ///
    /// # Errors
    ///
    /// See [`TrainSession::run`].
    ///
    /// # Panics
    ///
    /// Panics if `graphs` and `masks` lengths differ or a graph is
    /// unlabeled.
    pub fn run_stage(
        &mut self,
        gcn: &mut Gcn,
        graphs: &[&GraphData],
        masks: &[Vec<usize>],
        resume: Option<ResumePoint>,
        mut snapshot: impl FnMut(
            usize,
            &Gcn,
            &Option<ModelOptimizer>,
            f32,
            usize,
            &[EpochStats],
        ) -> TrainState,
    ) -> Result<GuardedOutcome, TrainError> {
        assert_eq!(graphs.len(), masks.len(), "one mask per graph");
        let class_weights = [1.0, self.cfg.pos_weight];
        let resumed_from = resume.as_ref().map(|r| r.epoch);
        let (mut epoch, mut lr, mut retries, mut history, mut optimizer) = match resume {
            Some(r) => {
                let mut opt = r.optimizer;
                if let Some(o) = &mut opt {
                    o.set_lr(r.lr);
                }
                (r.epoch, r.lr, r.retries, r.history, opt)
            }
            None => (
                0,
                self.cfg.lr,
                0,
                Vec::with_capacity(self.cfg.epochs),
                optimizer_for(gcn, &self.cfg),
            ),
        };
        let mut rollbacks = Vec::new();
        let mut recovered_workers = Vec::new();
        // The rollback target: model and optimizer *before* the most
        // recent parameter update, plus the loop cursor to replay it.
        let mut good = (gcn.clone(), optimizer.clone(), epoch, history.clone());
        let mut prev_loss: Option<f32> = history.last().map(|s| s.loss);
        let mut good_prev_loss = prev_loss;

        while epoch < self.cfg.epochs {
            let (loss, mut grads, confusion) = if self.parallel {
                let (l, g, c, recovered) =
                    parallel_epoch(gcn, graphs, masks, &class_weights, &self.fault, epoch)?;
                recovered_workers.extend(recovered.into_iter().map(|w| (epoch, w)));
                (l, g, c)
            } else {
                epoch_grads(gcn, graphs, masks, &class_weights)?
            };
            self.fault.corrupt_grads(epoch, &mut grads);

            if let Some(cause) = self.check_epoch(loss, &grads, prev_loss) {
                if retries >= self.guard.max_retries {
                    return Err(TrainError::Diverged {
                        epoch,
                        cause,
                        retries,
                    });
                }
                retries += 1;
                lr *= self.guard.lr_backoff;
                gcnt_obs::global().incr(gcnt_obs::counters::RUNTIME_ROLLBACKS);
                rollbacks.push(RollbackEvent {
                    epoch,
                    cause,
                    lr_after: lr,
                });
                // Rewind to the state before the update that diverged and
                // replay that epoch with the smaller rate.
                *gcn = good.0.clone();
                optimizer = good.1.clone();
                if let Some(opt) = &mut optimizer {
                    opt.set_lr(lr);
                }
                epoch = good.2;
                history = good.3.clone();
                prev_loss = good_prev_loss;
                continue;
            }

            // This epoch's forward pass proved the current parameters
            // good; snapshot them before the (possibly diverging) update.
            good = (gcn.clone(), optimizer.clone(), epoch, history.clone());
            good_prev_loss = prev_loss;
            let step_cfg = TrainConfig {
                lr,
                ..self.cfg.clone()
            };
            apply_update(gcn, &grads, &step_cfg, &mut optimizer);
            history.push(EpochStats {
                epoch,
                loss,
                train_accuracy: confusion.accuracy(),
            });
            prev_loss = Some(loss);
            epoch += 1;

            if let Some(store) = self.store {
                let due = (self.guard.checkpoint_every != 0
                    && epoch % self.guard.checkpoint_every == 0)
                    || epoch == self.cfg.epochs;
                if due {
                    store.save(&snapshot(epoch, gcn, &optimizer, lr, retries, &history))?;
                }
            }
        }
        Ok(GuardedOutcome {
            history,
            rollbacks,
            recovered_workers,
            retries_used: retries,
            final_lr: lr,
            resumed_from,
        })
    }

    fn check_epoch(
        &self,
        loss: f32,
        grads: &GcnGrads,
        prev_loss: Option<f32>,
    ) -> Option<DivergenceCause> {
        if !loss.is_finite() {
            return Some(DivergenceCause::NonFiniteLoss);
        }
        if !grads.is_finite() {
            return Some(DivergenceCause::NonFiniteGrad);
        }
        let norm = grads.l2_norm();
        gcnt_obs::global().gauge_set(gcnt_obs::gauges::CORE_TRAIN_GRAD_NORM, f64::from(norm));
        if norm > self.guard.grad_limit {
            return Some(DivergenceCause::ExplodingGrad {
                norm,
                limit: self.guard.grad_limit,
            });
        }
        if let Some(prev) = prev_loss {
            if prev.is_finite() && loss > prev * self.guard.spike_factor && loss > 1e-6 {
                return Some(DivergenceCause::LossSpike {
                    previous: prev,
                    current: loss,
                });
            }
        }
        None
    }
}

type EpochResult = Result<(f32, GcnGrads, Vec<usize>), TensorError>;

/// One data-parallel epoch: a worker thread per graph, gradients summed
/// on the main thread in fixed graph order (bit-identical to serial). A
/// worker that dies is recovered by recomputing its graph serially;
/// returns the indices of recovered workers.
fn parallel_epoch(
    gcn: &Gcn,
    graphs: &[&GraphData],
    masks: &[Vec<usize>],
    class_weights: &[f32; 2],
    fault: &FaultPlan,
    epoch: usize,
) -> Result<(f32, GcnGrads, Confusion, Vec<usize>), TensorError> {
    let snapshot: &Gcn = gcn;
    let results: Vec<std::thread::Result<EpochResult>> = thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .iter()
            .zip(masks)
            .enumerate()
            .map(|(worker, (data, mask))| {
                scope.spawn(move |_| {
                    if fault.should_kill(epoch, worker) {
                        panic!("injected fault: worker {worker} killed at epoch {epoch}");
                    }
                    masked_loss_grads(snapshot, data, mask, class_weights)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
    .expect("crossbeam scope");

    let mut total = gcn.zero_grads();
    let mut loss_sum = 0.0f32;
    let mut confusion = Confusion::default();
    let mut recovered = Vec::new();
    for (worker, (result, (data, mask))) in results
        .into_iter()
        .zip(graphs.iter().zip(masks))
        .enumerate()
    {
        let (loss, grads, preds) = match result {
            Ok(r) => r?,
            Err(_) => {
                // The worker died; its graph's gradient is recomputed on
                // this thread, preserving the fixed summation order.
                recovered.push(worker);
                masked_loss_grads(gcn, data, mask, class_weights)?
            }
        };
        total.accumulate(&grads);
        loss_sum += loss;
        confusion.merge(&Confusion::from_predictions(&data.labels_at(mask), &preds));
    }
    total.scale(1.0 / graphs.len() as f32);
    Ok((loss_sum / graphs.len() as f32, total, confusion, recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::GcnConfig;

    fn tiny_gcn(seed: u64) -> Gcn {
        Gcn::new(
            &GcnConfig {
                embed_dims: vec![2],
                fc_dims: vec![2],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(seed),
        )
    }

    #[test]
    fn check_epoch_flags_each_cause() {
        let session = TrainSession::new(TrainConfig::default());
        let gcn = tiny_gcn(1);
        let clean = gcn.zero_grads();
        assert_eq!(session.check_epoch(0.5, &clean, Some(0.4)), None);
        assert_eq!(
            session.check_epoch(f32::NAN, &clean, None),
            Some(DivergenceCause::NonFiniteLoss)
        );
        let mut nan_grads = gcn.zero_grads();
        nan_grads.agg_weights[0] = f32::NAN;
        assert_eq!(
            session.check_epoch(0.5, &nan_grads, None),
            Some(DivergenceCause::NonFiniteGrad)
        );
        let mut big_grads = gcn.zero_grads();
        big_grads.agg_weights[0] = 1e9;
        assert!(matches!(
            session.check_epoch(0.5, &big_grads, None),
            Some(DivergenceCause::ExplodingGrad { .. })
        ));
        assert!(matches!(
            session.check_epoch(10.0, &clean, Some(0.1)),
            Some(DivergenceCause::LossSpike { .. })
        ));
    }

    #[test]
    fn errors_render_and_convert() {
        let e: TrainError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("tensor failure"));
        let d = TrainError::Diverged {
            epoch: 7,
            cause: DivergenceCause::NonFiniteLoss,
            retries: 3,
        };
        assert!(d.to_string().contains("epoch 7"));
        assert!(d.to_string().contains("NaN"));
    }
}
