//! Integration tests of the resilience layer: interrupt-then-resume
//! determinism, corrupted-checkpoint fallback, divergence recovery, and
//! (with `--features fault-inject`) injected worker/gradient faults.

use std::fs;
use std::path::PathBuf;

use gcnt_core::{GcnConfig, GraphData, MultiStageConfig, MultiStageGcn, TrainConfig};
use gcnt_netlist::{generate, GeneratorConfig, Scoap};
#[cfg(feature = "fault-inject")]
use gcnt_runtime::FaultPlan;
use gcnt_runtime::{
    CheckpointError, CheckpointStore, GuardConfig, MultiStageTrainer, TrainError, TrainSession,
    TrainState, CHECKPOINT_VERSION,
};

/// Imbalanced labeled data from the SCOAP observability tail.
fn labeled_data(seed: u64, size: usize) -> GraphData {
    let net = generate(&GeneratorConfig::sized("resil", seed, size));
    let scoap = Scoap::compute(&net).unwrap();
    let mut cos: Vec<u32> = net.nodes().map(|v| scoap.co(v)).collect();
    cos.sort_unstable();
    let thresh = cos[cos.len() * 9 / 10].max(1);
    let labels: Vec<u8> = net
        .nodes()
        .map(|v| u8::from(scoap.co(v) >= thresh))
        .collect();
    GraphData::from_netlist(&net, None)
        .unwrap()
        .with_labels(labels)
}

fn small_cascade_cfg() -> MultiStageConfig {
    MultiStageConfig {
        stages: 2,
        gcn: GcnConfig {
            embed_dims: vec![4],
            fc_dims: vec![4],
            ..GcnConfig::default()
        },
        epochs_per_stage: 12,
        lr: 0.05,
        filter_threshold: 0.25,
        max_pos_weight: 8.0,
        seed: 3,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcnt-resil-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn model_json(model: &MultiStageGcn) -> String {
    serde_json::to_string(model).unwrap()
}

#[test]
fn guarded_cascade_matches_plain_trainer_bit_for_bit() {
    let data = labeled_data(81, 300);
    let cfg = small_cascade_cfg();
    let (plain, plain_reports) = MultiStageGcn::train(&cfg, &[&data]).unwrap();
    let outcome = MultiStageTrainer::new(cfg).run(&[&data]).unwrap();
    assert_eq!(model_json(&plain), model_json(&outcome.model));
    assert_eq!(plain_reports, outcome.reports);
    assert!(outcome.rollbacks.is_empty());
}

#[test]
fn interrupt_then_resume_is_bit_for_bit_identical() {
    let data = labeled_data(82, 300);
    let cfg = small_cascade_cfg();

    // Reference: uninterrupted run.
    let uninterrupted = MultiStageTrainer::new(cfg.clone()).run(&[&data]).unwrap();

    // Interrupted run: checkpoint every 5 epochs, keep everything, then
    // simulate a crash by discarding every checkpoint newer than an
    // early mid-stage one and resuming from what's left.
    let dir = temp_dir("resume");
    let store = CheckpointStore::open(&dir, 100).unwrap();
    let mut first = MultiStageTrainer::new(cfg.clone());
    first.guard.checkpoint_every = 5;
    first.store = Some(&store);
    first.run(&[&data]).unwrap();

    let files = store.list().unwrap();
    assert!(files.len() >= 4, "expected several checkpoints: {files:?}");
    // Keep only the first two checkpoints (mid-stage-0 state).
    for late in &files[2..] {
        fs::remove_file(late).unwrap();
    }

    let mut resumed = MultiStageTrainer::new(cfg);
    resumed.store = Some(&store);
    resumed.resume = true;
    let outcome = resumed.run(&[&data]).unwrap();
    assert!(outcome.resumed_from.is_some());
    assert_ne!(outcome.resumed_from, Some((0, 0)), "must resume mid-run");
    assert_eq!(
        model_json(&uninterrupted.model),
        model_json(&outcome.model),
        "resumed run must be bit-for-bit identical"
    );
    assert_eq!(uninterrupted.reports, outcome.reports);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_stage_boundary_is_identical() {
    let data = labeled_data(83, 300);
    let cfg = small_cascade_cfg();
    let uninterrupted = MultiStageTrainer::new(cfg.clone()).run(&[&data]).unwrap();

    let dir = temp_dir("stage-boundary");
    let store = CheckpointStore::open(&dir, 100).unwrap();
    let mut first = MultiStageTrainer::new(cfg.clone());
    first.guard.checkpoint_every = 0; // stage-boundary + end-of-stage only
    first.store = Some(&store);
    first.run(&[&data]).unwrap();

    // Keep only the stage-0 boundary checkpoint (ckpt-0001-000000).
    for path in store.list().unwrap() {
        if !path.to_str().unwrap().contains("ckpt-0001-000000") {
            fs::remove_file(path).unwrap();
        }
    }
    let mut resumed = MultiStageTrainer::new(cfg);
    resumed.store = Some(&store);
    resumed.resume = true;
    let outcome = resumed.run(&[&data]).unwrap();
    assert_eq!(outcome.resumed_from, Some((1, 0)));
    assert_eq!(model_json(&uninterrupted.model), model_json(&outcome.model));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_fall_back_to_previous() {
    let data = labeled_data(84, 250);
    let dir = temp_dir("corrupt");
    let store = CheckpointStore::open(&dir, 100).unwrap();
    let cfg = small_cascade_cfg();
    let mut trainer = MultiStageTrainer::new(cfg);
    trainer.guard.checkpoint_every = 4;
    trainer.store = Some(&store);
    trainer.run(&[&data]).unwrap();

    let files = store.list().unwrap();
    let newest = files.last().unwrap().clone();

    // Truncation: typed Malformed error, and load_latest falls back.
    let original = fs::read(&newest).unwrap();
    fs::write(&newest, &original[..original.len() / 2]).unwrap();
    assert!(matches!(
        store.load(&newest, false),
        Err(CheckpointError::Malformed { .. })
    ));
    let (state, findings) = store.load_latest(false).unwrap();
    let fallback = state.expect("older checkpoint must be usable");
    assert!(!findings.is_clean(), "the skipped file must be reported");
    assert!(findings.fired(gcnt_lint::RuleId::ChecksumMismatch));

    // Bit flip inside the payload: CK001 checksum mismatch.
    fs::write(&newest, &original).unwrap();
    let mut flipped = original.clone();
    let offset = flipped.len() / 2;
    flipped[offset] ^= 0x01;
    fs::write(&newest, &flipped).unwrap();
    match store.load(&newest, false) {
        Err(CheckpointError::Invalid { report, .. }) => {
            assert!(report.fired(gcnt_lint::RuleId::ChecksumMismatch));
        }
        Err(CheckpointError::Malformed { .. }) => {
            // A flip inside JSON string syntax can break parsing instead;
            // either way the file is rejected with a typed error.
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    let (state, _) = store.load_latest(false).unwrap();
    assert_eq!(
        state.expect("fallback state").epoch,
        fallback.epoch,
        "fallback must pick the same previous checkpoint"
    );

    // Wrong version: CK002.
    let text = String::from_utf8(original.clone()).unwrap();
    let versioned = text.replacen(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        "\"version\":99",
        1,
    );
    assert_ne!(text, versioned, "replacement must hit the version field");
    fs::write(&newest, versioned).unwrap();
    match store.load(&newest, false) {
        Err(CheckpointError::Invalid { report, .. }) => {
            assert!(report.fired(gcnt_lint::RuleId::UnsupportedVersion));
        }
        other => panic!("expected CK002 rejection, got {other:?}"),
    }

    // Missing optimizer state when required: CK003.
    fs::write(&newest, &original).unwrap();
    let plain_state = store.load(&newest, false).unwrap();
    assert!(plain_state.optimizer.is_none());
    match store.load(&newest, true) {
        Err(CheckpointError::Invalid { report, .. }) => {
            assert!(report.fired(gcnt_lint::RuleId::MissingState));
        }
        other => panic!("expected CK003 rejection, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn natural_divergence_is_recovered_by_backoff() {
    let data = labeled_data(85, 250);
    let mask: Vec<usize> = (0..data.node_count()).step_by(2).collect();
    let mut gcn = gcnt_core::Gcn::new(
        &GcnConfig {
            embed_dims: vec![4],
            fc_dims: vec![4],
            ..GcnConfig::default()
        },
        &mut gcnt_nn::seeded_rng(1),
    );
    let mut session = TrainSession::new(TrainConfig {
        epochs: 15,
        lr: 1e6, // guaranteed to explode without the guard
        momentum: 0.0,
        pos_weight: 1.0,
    });
    session.guard = GuardConfig {
        max_retries: 40,
        ..GuardConfig::default()
    };
    let outcome = session.run(&mut gcn, &[&data], &[mask]).unwrap();
    assert!(
        !outcome.rollbacks.is_empty(),
        "an lr of 1e6 must trip the guard"
    );
    assert!(outcome.final_lr < 1e6, "backoff must reduce the rate");
    assert!(outcome.history.iter().all(|s| s.loss.is_finite()));
    assert_eq!(outcome.history.len(), 15);
}

#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let data = labeled_data(86, 250);
    let mask: Vec<usize> = (0..data.node_count()).step_by(2).collect();
    let mut gcn = gcnt_core::Gcn::new(
        &GcnConfig {
            embed_dims: vec![4],
            fc_dims: vec![4],
            ..GcnConfig::default()
        },
        &mut gcnt_nn::seeded_rng(1),
    );
    let mut session = TrainSession::new(TrainConfig {
        epochs: 15,
        lr: 1e6,
        momentum: 0.0,
        pos_weight: 1.0,
    });
    session.guard = GuardConfig {
        max_retries: 2, // far too few halvings to tame 1e6
        ..GuardConfig::default()
    };
    match session.run(&mut gcn, &[&data], &[mask]) {
        Err(TrainError::Diverged { retries, .. }) => assert_eq!(retries, 2),
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn single_model_resume_is_bit_for_bit_identical() {
    let data = labeled_data(87, 250);
    let mask: Vec<usize> = (0..data.node_count()).step_by(2).collect();
    let fresh_gcn = || {
        gcnt_core::Gcn::new(
            &GcnConfig {
                embed_dims: vec![4],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(5),
        )
    };
    let cfg = |epochs| TrainConfig {
        epochs,
        lr: 0.05,
        momentum: 0.9, // exercises optimizer-state persistence
        pos_weight: 1.0,
    };

    let mut reference = fresh_gcn();
    TrainSession::new(cfg(20))
        .run(&mut reference, &[&data], std::slice::from_ref(&mask))
        .unwrap();

    let dir = temp_dir("single-resume");
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let mut interrupted = fresh_gcn();
    let mut first = TrainSession::new(cfg(10));
    first.store = Some(&store);
    first.guard.checkpoint_every = 5;
    first
        .run(&mut interrupted, &[&data], std::slice::from_ref(&mask))
        .unwrap();

    let mut resumed_model = fresh_gcn();
    let mut second = TrainSession::new(cfg(20));
    second.store = Some(&store);
    second.resume = true;
    let outcome = second
        .run(&mut resumed_model, &[&data], std::slice::from_ref(&mask))
        .unwrap();
    assert_eq!(outcome.resumed_from, Some(10));
    assert_eq!(
        serde_json::to_string(&reference).unwrap(),
        serde_json::to_string(&resumed_model).unwrap(),
        "momentum run must resume bit-for-bit"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn parallel_guarded_matches_serial_guarded() {
    let d1 = labeled_data(88, 250);
    let d2 = labeled_data(89, 250);
    let masks: Vec<Vec<usize>> = [&d1, &d2]
        .iter()
        .map(|d| (0..d.node_count()).step_by(3).collect())
        .collect();
    let fresh_gcn = || {
        gcnt_core::Gcn::new(
            &GcnConfig {
                embed_dims: vec![4],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(6),
        )
    };
    let cfg = TrainConfig {
        epochs: 6,
        lr: 0.05,
        momentum: 0.0,
        pos_weight: 2.0,
    };
    let mut serial = fresh_gcn();
    TrainSession::new(cfg.clone())
        .run(&mut serial, &[&d1, &d2], &masks)
        .unwrap();
    let mut parallel = fresh_gcn();
    let mut session = TrainSession::new(cfg);
    session.parallel = true;
    session.run(&mut parallel, &[&d1, &d2], &masks).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn checkpoint_state_round_trips_rng_and_cursor() {
    let dir = temp_dir("state-roundtrip");
    let store = CheckpointStore::open(&dir, 2).unwrap();
    let mut rng = gcnt_nn::seeded_rng(42);
    let model = gcnt_core::Gcn::new(
        &GcnConfig {
            embed_dims: vec![3],
            fc_dims: vec![3],
            ..GcnConfig::default()
        },
        &mut rng,
    );
    let state = TrainState {
        stage: 1,
        epoch: 17,
        lr: 0.0125,
        retries_used: 2,
        model,
        optimizer: None,
        history: vec![],
        completed: vec![],
        active: vec![vec![1, 3, 5]],
        reports: vec![],
        rng: Some(rng.clone()),
    };
    let path = store.save(&state).unwrap();
    let back = store.load(&path, false).unwrap();
    assert_eq!(back, state);
    // The restored RNG continues the exact stream.
    use rand::RngCore;
    let mut restored = back.rng.unwrap();
    let mut original = rng;
    for _ in 0..20 {
        assert_eq!(restored.next_u64(), original.next_u64());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
mod fault_injected {
    use super::*;

    #[test]
    fn injected_nan_gradient_is_detected_and_rolled_back() {
        let data = labeled_data(90, 250);
        let mask: Vec<usize> = (0..data.node_count()).step_by(2).collect();
        let fresh_gcn = || {
            gcnt_core::Gcn::new(
                &GcnConfig {
                    embed_dims: vec![4],
                    fc_dims: vec![4],
                    ..GcnConfig::default()
                },
                &mut gcnt_nn::seeded_rng(7),
            )
        };
        let cfg = TrainConfig {
            epochs: 10,
            lr: 0.05,
            momentum: 0.0,
            pos_weight: 1.0,
        };
        let mut clean_model = fresh_gcn();
        TrainSession::new(cfg.clone())
            .run(&mut clean_model, &[&data], std::slice::from_ref(&mask))
            .unwrap();

        let mut faulted_model = fresh_gcn();
        let mut session = TrainSession::new(cfg);
        session.fault = FaultPlan::none().with_nan_grads(3);
        let outcome = session
            .run(&mut faulted_model, &[&data], std::slice::from_ref(&mask))
            .unwrap();
        assert_eq!(outcome.rollbacks.len(), 1);
        assert_eq!(outcome.rollbacks[0].epoch, 3);
        assert_eq!(outcome.history.len(), 10);
        assert!(outcome.history.iter().all(|s| s.loss.is_finite()));
        // The transient fault must not leave NaN anywhere in the model.
        assert!(gcnt_lint::lint_gcn(&faulted_model, "post-fault").is_clean());
    }

    #[test]
    fn killed_worker_is_recovered_and_result_unchanged() {
        let d1 = labeled_data(91, 250);
        let d2 = labeled_data(92, 250);
        let masks: Vec<Vec<usize>> = [&d1, &d2]
            .iter()
            .map(|d| (0..d.node_count()).step_by(3).collect())
            .collect();
        let fresh_gcn = || {
            gcnt_core::Gcn::new(
                &GcnConfig {
                    embed_dims: vec![4],
                    fc_dims: vec![4],
                    ..GcnConfig::default()
                },
                &mut gcnt_nn::seeded_rng(8),
            )
        };
        let cfg = TrainConfig {
            epochs: 5,
            lr: 0.05,
            momentum: 0.0,
            pos_weight: 1.0,
        };
        let mut reference = fresh_gcn();
        TrainSession::new(cfg.clone())
            .run(&mut reference, &[&d1, &d2], &masks)
            .unwrap();

        let mut survivor = fresh_gcn();
        let mut session = TrainSession::new(cfg);
        session.parallel = true;
        session.fault = FaultPlan::none().with_worker_kill(2, 1);
        let outcome = session.run(&mut survivor, &[&d1, &d2], &masks).unwrap();
        assert_eq!(outcome.recovered_workers, vec![(2, 1)]);
        assert_eq!(
            reference, survivor,
            "recovery must not change the trained model"
        );
    }

    #[test]
    fn corruption_helpers_break_checkpoints_detectably() {
        let dir = temp_dir("helpers");
        let store = CheckpointStore::open(&dir, 5).unwrap();
        let model = gcnt_core::Gcn::new(
            &GcnConfig {
                embed_dims: vec![3],
                fc_dims: vec![3],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(2),
        );
        let state = TrainState::single(4, &model, &None, 0.05, 0, &[]);
        let p1 = store.save(&state).unwrap();
        gcnt_runtime::truncate_file(&p1);
        assert!(store.load(&p1, false).is_err());
        let state2 = TrainState::single(8, &model, &None, 0.05, 0, &[]);
        let p2 = store.save(&state2).unwrap();
        let len = fs::read(&p2).unwrap().len();
        gcnt_runtime::flip_byte(&p2, len / 2);
        assert!(store.load(&p2, false).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
