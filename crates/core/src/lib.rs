//! High-performance graph convolutional network for netlist testability
//! analysis — the core contribution of the DAC'19 paper.
//!
//! The model classifies every cell of a netlist as *difficult-to-observe*
//! (positive) or *easy-to-observe* (negative):
//!
//! 1. Node attributes `[LL, C0, C1, O]` are assembled by [`features`].
//! 2. [`Gcn`] computes node embeddings with `D` rounds of *aggregate*
//!    (weighted sum over predecessors and successors with learned scalars
//!    `w_pr` / `w_su`, Eq. (1)) and *encode* (`E_d = ReLU(G_d W_d)`), then
//!    classifies with a 4-layer FC head (Fig. 1 / Alg. 1).
//! 3. Inference is formulated as sparse matrix products over the COO/CSR
//!    adjacency ([`GraphTensors`]), which is what makes the model scale to
//!    millions of cells (§3.4.1, Fig. 10). The recursion-based baseline it
//!    is compared against lives in [`recursive`]. At the 10^5–10^6-node
//!    scale, [`MatrixBackend`] swaps the serial CSR kernels for
//!    partition-parallel sharded ones — bit-identically.
//! 4. [`MultiStageGcn`] implements the imbalance-handling cascade of §3.3.
//! 5. [`incremental`] caches per-layer embeddings and, when only a few
//!    nodes change (an OP-insertion preview or commit), recomputes just the
//!    D-hop halo around them — bit-identical to a full pass.
//! 6. [`train`] and [`parallel`] implement single-worker and multi-worker
//!    data-parallel training (§3.4.2).
//!
//! # Examples
//!
//! ```
//! use gcnt_core::{Gcn, GcnConfig, GraphData};
//! use gcnt_netlist::{generate, GeneratorConfig};
//!
//! let net = generate(&GeneratorConfig::sized("demo", 1, 600));
//! let data = GraphData::from_netlist(&net, None)?;
//! let gcn = Gcn::new(&GcnConfig::default(), &mut gcnt_nn::seeded_rng(0));
//! let logits = gcn.predict(&data.tensors, &data.features)?;
//! assert_eq!(logits.rows(), net.node_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod adjacency;
pub mod backend;
mod dataset;
pub mod features;
pub mod incremental;
pub mod metrics;
mod model;
mod multistage;
pub mod parallel;
pub mod recursive;
pub mod train;

pub use adjacency::GraphTensors;
pub use backend::{MatrixBackend, PartitionedGraph};
pub use dataset::{balanced_indices, train_test_rotation, GraphData};
pub use gcnt_tensor::{Kernel, KernelPolicy};
pub use incremental::{CascadeSession, EmbeddingCache, EmbeddingDelta, SessionDelta};
pub use metrics::Confusion;
pub use model::{Gcn, GcnCache, GcnConfig, GcnGrads};
pub use multistage::{MultiStageConfig, MultiStageGcn, StageReport};
pub use parallel::train_parallel;
pub use train::{
    apply_update, epoch_grads, evaluate, masked_loss_grads, optimizer_for, EpochStats, TrainConfig,
};
