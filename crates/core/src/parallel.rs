//! Multi-worker data-parallel training (§3.4.2 of the paper).
//!
//! The paper's scheme is a variant of data parallelism: because one
//! graph's adjacency matrix and node representation matrix cannot be
//! split, *whole graphs* are distributed — "Each GPU processes one graph,
//! and all of the output is gathered to calculate the loss and then do
//! back-propagation to update the model" (Fig. 5).
//!
//! Here each *worker thread* processes one graph per epoch: the current
//! parameters are shared read-only, each worker computes its graph's full
//! gradient, the main thread sums the gradients and applies one SGD step.
//! The result is bit-for-bit identical to the serial [`crate::train::train`]
//! loop (gradients are summed in a fixed graph order), which the tests
//! assert — parallelism changes wall-clock, never the trained model.

use crossbeam::thread;

use gcnt_tensor::{Result, TensorError};

use crate::metrics::Confusion;
use crate::train::{apply_update, masked_loss_grads, optimizer_for, EpochStats, TrainConfig};
use crate::{Gcn, GraphData};

/// Trains with one worker thread per graph and synchronous gradient
/// summation. See the module docs for the exact scheme.
///
/// # Errors
///
/// Returns a shape error if any graph disagrees with the model.
///
/// # Panics
///
/// Panics if `graphs` and `masks` lengths differ, any graph is unlabeled,
/// or a worker thread panics.
pub fn train_parallel(
    gcn: &mut Gcn,
    graphs: &[&GraphData],
    masks: &[Vec<usize>],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    assert_eq!(graphs.len(), masks.len(), "one mask per graph");
    let class_weights = [1.0, cfg.pos_weight];
    let mut optimizer = optimizer_for(gcn, cfg);
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Workers borrow the model read-only for the whole epoch.
        let snapshot: &Gcn = gcn;
        let results: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = graphs
                .iter()
                .zip(masks)
                .map(|(data, mask)| {
                    scope.spawn(move |_| masked_loss_grads(snapshot, data, mask, &class_weights))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");

        let mut total = gcn.zero_grads();
        let mut loss_sum = 0.0f32;
        let mut confusion = Confusion::default();
        for (result, (data, mask)) in results.into_iter().zip(graphs.iter().zip(masks)) {
            let (loss, grads, preds) = result.map_err(|e: TensorError| e)?;
            total.accumulate(&grads);
            loss_sum += loss;
            confusion.merge(&Confusion::from_predictions(&data.labels_at(mask), &preds));
        }
        total.scale(1.0 / graphs.len() as f32);
        apply_update(gcn, &total, cfg, &mut optimizer);
        history.push(EpochStats {
            epoch,
            loss: loss_sum / graphs.len() as f32,
            train_accuracy: confusion.accuracy(),
        });
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train;
    use crate::GcnConfig;
    use gcnt_netlist::{generate, GeneratorConfig, Scoap};
    use gcnt_nn::seeded_rng;

    fn labeled_data(seed: u64) -> GraphData {
        let net = generate(&GeneratorConfig::sized("p", seed, 400));
        let scoap = Scoap::compute(&net).unwrap();
        let mut cos: Vec<u32> = net.nodes().map(|v| scoap.co(v)).collect();
        cos.sort_unstable();
        let thresh = cos[cos.len() * 9 / 10].max(1);
        let labels: Vec<u8> = net
            .nodes()
            .map(|v| u8::from(scoap.co(v) >= thresh))
            .collect();
        GraphData::from_netlist(&net, None)
            .unwrap()
            .with_labels(labels)
    }

    fn small_gcn(seed: u64) -> Gcn {
        Gcn::new(
            &GcnConfig {
                embed_dims: vec![4, 8],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let d1 = labeled_data(41);
        let d2 = labeled_data(42);
        let d3 = labeled_data(43);
        let masks: Vec<Vec<usize>> = [&d1, &d2, &d3]
            .iter()
            .map(|d| (0..d.node_count()).step_by(3).collect())
            .collect();
        let cfg = TrainConfig {
            epochs: 4,
            lr: 0.05,
            pos_weight: 3.0,
            momentum: 0.0,
        };
        let mut serial = small_gcn(50);
        let hs = train(&mut serial, &[&d1, &d2, &d3], &masks, &cfg).unwrap();
        let mut par = small_gcn(50);
        let hp = train_parallel(&mut par, &[&d1, &d2, &d3], &masks, &cfg).unwrap();
        assert_eq!(serial, par, "parallel training must not change the model");
        assert_eq!(hs.len(), hp.len());
        for (a, b) in hs.iter().zip(&hp) {
            assert_eq!(a.loss, b.loss);
        }
    }

    #[test]
    fn single_graph_parallel_works() {
        let d = labeled_data(44);
        let mask: Vec<usize> = (0..d.node_count()).step_by(2).collect();
        let mut gcn = small_gcn(51);
        let cfg = TrainConfig {
            epochs: 3,
            lr: 0.05,
            pos_weight: 1.0,
            momentum: 0.0,
        };
        let h = train_parallel(&mut gcn, &[&d], &[mask], &cfg).unwrap();
        assert_eq!(h.len(), 3);
        assert!(h[2].loss <= h[0].loss * 1.5);
    }
}
