//! Incremental inference engine: dirty-cone embedding reuse.
//!
//! The paper's matrix-form inference (§3.4.1) recomputes every node
//! embedding on every call, yet the OP-insertion flow (§4) perturbs only a
//! handful of rows per step: a SCOAP preview touches one fan-in cone, a
//! committed insertion appends one node. This module caches the per-layer
//! embeddings `E_1..E_D` of a base graph state and, given the set of dirty
//! nodes, recomputes only the *D-hop halo* around them:
//!
//! * the dirty frontier grows one hop per aggregate round — predecessors
//!   *and* successors, since [`GraphTensors::aggregate`] sums over both
//!   ([`GraphTensors::halo_step`]);
//! * the affected rows are gathered, pushed through a row-sliced
//!   SpMM + encode ([`GraphTensors::aggregate_rows`]), and scattered back
//!   into the cached layer.
//!
//! Because every kernel involved is row-independent with an unchanged
//! per-row accumulation order, the patched cache is **bit-for-bit equal** to
//! a full recompute — not merely close. That exactness is load-bearing: the
//! flow compares probabilities against a threshold, and a `1e-7` drift could
//! flip a candidate across it. The guarantee survives the tensor layer's
//! runtime kernel dispatch ([`gcnt_tensor::KernelPolicy`]) because the
//! scalar and register-blocked row kernels are themselves bit-identical —
//! the full pass and the row-sliced patch agree whichever kernel either of
//! them happened to run on.
//!
//! Staleness is policed with a generation counter:
//! [`GraphTensors::insert_observation_point`] bumps
//! [`GraphTensors::generation`], and a cache built against an older
//! generation refuses to serve
//! ([`gcnt_tensor::TensorError::StaleCache`]). After a committed insertion,
//! call [`CascadeSession::sync_nodes`] to grow the cache (new rows zeroed)
//! and adopt the new generation, then pass the insertion's dirty set to the
//! next [`CascadeSession::refresh`].

use gcnt_tensor::{ops, Budget, Matrix, Result, TensorError};

use crate::backend::MatrixBackend;
use crate::{Gcn, GraphTensors, MultiStageGcn};

/// Per-layer embeddings `E_1..E_D` of one [`Gcn`] on one graph state.
///
/// The input features `E_0 = X` are *not* owned here — callers keep a
/// single authoritative copy and pass it to every call, so a flow state and
/// its session never hold diverging feature matrices.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    layers: Vec<Matrix>,
    generation: u64,
}

impl EmbeddingCache {
    /// Rebuilds a cache from externally persisted layers (e.g. pages of a
    /// warm-restart store). The layers must be `E_1..E_D` in order, all
    /// with the same row count; `generation` is the graph generation they
    /// were computed at, re-validated when the cache is next used.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if no layers are supplied, and
    /// [`TensorError::ShapeMismatch`] if the layers disagree on row count.
    pub fn from_layers(layers: Vec<Matrix>, generation: u64) -> Result<Self> {
        let Some(first) = layers.first() else {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        };
        let rows = first.rows();
        for layer in &layers {
            if layer.rows() != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "EmbeddingCache::from_layers",
                    lhs: (rows, first.cols()),
                    rhs: layer.shape(),
                });
            }
        }
        Ok(EmbeddingCache { layers, generation })
    }

    /// Generation of the graph state this cache was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cached layers `E_1..E_D` (index `d` holds `E_{d+1}`).
    pub fn layers(&self) -> &[Matrix] {
        &self.layers
    }

    /// The final embedding `E_D`, input of the classifier head.
    ///
    /// # Panics
    ///
    /// Panics if the cache holds no layers; [`Gcn::embed_cached`] always
    /// produces at least one.
    pub fn final_embedding(&self) -> &Matrix {
        self.layers.last().expect("cache holds at least one layer")
    }

    /// Grows every layer to `n` rows (new rows zeroed) and adopts the given
    /// generation — the post-insertion resync. The zero rows are
    /// placeholders: the caller must include the new nodes in the next
    /// dirty set so they get computed for real.
    pub fn extend_to(&mut self, n: usize, generation: u64) {
        for layer in &mut self.layers {
            let zero = vec![0.0; layer.cols()];
            while layer.rows() < n {
                layer.push_row(&zero).expect("zero row matches layer width");
            }
        }
        self.generation = generation;
    }

    /// Restores the rows recorded in `delta`, undoing the matching
    /// [`Gcn::embed_incremental`] call. Deltas must be reverted in reverse
    /// order of application.
    pub fn revert(&mut self, delta: EmbeddingDelta) {
        for (layer, (rows, old)) in self.layers.iter_mut().zip(delta.layer_undo) {
            layer
                .scatter_rows(&rows, &old)
                .expect("undo rows were gathered from this layer");
        }
    }
}

/// Undo record plus work accounting returned by [`Gcn::embed_incremental`].
#[derive(Debug, Clone)]
pub struct EmbeddingDelta {
    /// Per layer: the recomputed row indices and their previous values.
    layer_undo: Vec<(Vec<usize>, Matrix)>,
    rows_computed: usize,
}

impl EmbeddingDelta {
    /// Total embedding rows recomputed across all layers (`Σ_d |S_d|`).
    pub fn rows_computed(&self) -> usize {
        self.rows_computed
    }

    /// Rows whose *final* embedding changed — the halo at depth `D`, i.e.
    /// the only rows whose classification can differ.
    ///
    /// # Panics
    ///
    /// Panics if the delta is empty; `embed_incremental` always records at
    /// least one layer.
    pub fn final_rows(&self) -> &[usize] {
        &self
            .layer_undo
            .last()
            .expect("delta records at least one layer")
            .0
    }
}

impl Gcn {
    /// Full forward pass that retains every intermediate layer, seeding an
    /// [`EmbeddingCache`]. `final_embedding()` is bit-identical to
    /// [`Gcn::embed`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape, or
    /// a length error for a depth-0 model (nothing to cache).
    pub fn embed_cached(&self, t: &GraphTensors, x: &Matrix) -> Result<EmbeddingCache> {
        self.embed_cached_budgeted(t, x, &Budget::unlimited())
    }

    /// [`Gcn::embed_cached`] under a cooperative work [`Budget`]: each
    /// layer charges one unit per node before computing, so an exhausted
    /// or cancelled budget stops the pass at a layer boundary.
    ///
    /// # Errors
    ///
    /// As [`Gcn::embed_cached`], plus budget errors
    /// ([`TensorError::BudgetExceeded`] / [`TensorError::Cancelled`])
    /// from the inter-layer checkpoints.
    pub fn embed_cached_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<EmbeddingCache> {
        self.embed_cached_budgeted_with(t, x, budget, &mut MatrixBackend::serial())
    }

    /// [`Gcn::embed_cached_budgeted`] through an explicit
    /// [`MatrixBackend`]. The seeded cache is bit-identical across
    /// backends, so the dirty-halo incremental patching that follows
    /// (always serial — its frontier is a sparse row subset that does not
    /// benefit from partitioning) composes with a partition-built cache.
    ///
    /// # Errors
    ///
    /// As [`Gcn::embed_cached_budgeted`], plus
    /// [`TensorError::StaleCache`] from a partitioned backend built
    /// against an older graph generation.
    pub fn embed_cached_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<EmbeddingCache> {
        if self.encoders().is_empty() {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let mut layers = Vec::with_capacity(self.depth());
        let mut e = x.clone();
        for enc in self.encoders() {
            budget.charge(e.rows() as u64)?;
            let g = backend.aggregate(t, &e, self.w_pr(), self.w_su())?;
            e = ops::relu(&enc.forward(&g)?);
            layers.push(e.clone());
        }
        Ok(EmbeddingCache {
            layers,
            generation: t.generation(),
        })
    }

    /// Patches `cache` in place after the feature rows `dirty` changed,
    /// recomputing only the growing halo `S_d = halo_step(S_{d-1})` per
    /// layer. The patched cache is bit-for-bit what [`Gcn::embed_cached`]
    /// would rebuild from scratch (see the module docs for why exactness
    /// holds).
    ///
    /// The returned [`EmbeddingDelta`] can be handed to
    /// [`EmbeddingCache::revert`] to undo the patch — the preview path of
    /// the flow's impact scoring.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StaleCache`] if the cache generation does not
    /// match the graph, a length error if the cache shape disagrees with the
    /// model or graph, or an index error for out-of-range dirty rows. The
    /// cache is only mutated after all validation passes.
    pub fn embed_incremental(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        cache: &mut EmbeddingCache,
        dirty: &[usize],
    ) -> Result<EmbeddingDelta> {
        self.embed_incremental_budgeted(t, x, cache, dirty, &Budget::unlimited())
    }

    /// [`Gcn::embed_incremental`] under a cooperative work [`Budget`]:
    /// every layer charges one unit per halo row before recomputing it, so
    /// an exhausted or cancelled budget stops the patch at a layer
    /// boundary. On a budget error the already-patched layers are rolled
    /// back, leaving the cache exactly as before the call.
    ///
    /// # Errors
    ///
    /// As [`Gcn::embed_incremental`], plus budget errors
    /// ([`TensorError::BudgetExceeded`] / [`TensorError::Cancelled`])
    /// from the per-layer checkpoints.
    pub fn embed_incremental_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        cache: &mut EmbeddingCache,
        dirty: &[usize],
        budget: &Budget,
    ) -> Result<EmbeddingDelta> {
        let n = t.node_count();
        if cache.generation != t.generation() {
            return Err(TensorError::StaleCache {
                cache: cache.generation,
                graph: t.generation(),
            });
        }
        if cache.layers.len() != self.depth() {
            return Err(TensorError::LengthMismatch {
                expected: self.depth(),
                actual: cache.layers.len(),
            });
        }
        if x.rows() != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: x.rows(),
            });
        }
        for layer in &cache.layers {
            if layer.rows() != n {
                return Err(TensorError::LengthMismatch {
                    expected: n,
                    actual: layer.rows(),
                });
            }
        }
        if let Some(&bad) = dirty.iter().find(|&&r| r >= n) {
            return Err(TensorError::IndexOutOfBounds {
                index: (bad, 0),
                shape: (n, n),
            });
        }
        let mut rows: Vec<usize> = dirty.to_vec();
        rows.sort_unstable();
        rows.dedup();
        let mut layer_undo = Vec::with_capacity(self.depth());
        let mut rows_computed = 0usize;
        for (d, enc) in self.encoders().iter().enumerate() {
            rows = t.halo_step(&rows);
            if let Err(e) = budget.charge(rows.len() as u64) {
                // Roll the already-patched layers back so a budget stop
                // leaves the cache exactly as before the call.
                cache.revert(EmbeddingDelta {
                    layer_undo,
                    rows_computed,
                });
                return Err(e);
            }
            let prev = if d == 0 { x } else { &cache.layers[d - 1] };
            let g = t.aggregate_rows(prev, &rows, self.w_pr(), self.w_su())?;
            let e = ops::relu(&enc.forward(&g)?);
            let old = cache.layers[d].gather_rows(&rows);
            cache.layers[d].scatter_rows(&rows, &e)?;
            rows_computed += rows.len();
            layer_undo.push((rows.clone(), old));
        }
        Ok(EmbeddingDelta {
            layer_undo,
            rows_computed,
        })
    }
}

/// Undo record plus work accounting returned by [`CascadeSession::refresh`].
#[derive(Debug, Clone)]
pub struct SessionDelta {
    stage_deltas: Vec<EmbeddingDelta>,
    /// Rows whose final embedding — and hence probability — was recomputed.
    rows: Vec<usize>,
    /// Previous per-stage probabilities of those rows.
    old_stage_probs: Vec<Vec<f32>>,
    /// Previous combined probabilities of those rows.
    old_probs: Vec<f32>,
    rows_computed: u64,
    rows_full: u64,
}

impl SessionDelta {
    /// Embedding rows actually recomputed, summed over stages and layers.
    pub fn rows_computed(&self) -> u64 {
        self.rows_computed
    }

    /// What a full recompute would have cost in the same unit
    /// (`Σ_stages depth × node_count`).
    pub fn rows_full_equivalent(&self) -> u64 {
        self.rows_full
    }

    /// Rows whose combined probability may have changed.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }
}

/// A live incremental-inference session over a (possibly single-stage)
/// cascade: per-stage [`EmbeddingCache`]s plus the per-stage and combined
/// probabilities, kept current under dirty-row refreshes.
///
/// The cascade stages carry *distinct* trained weights, so their embeddings
/// cannot be shared — what is shared is the halo: the dirty set is
/// graph-structural, so every stage recomputes the same rows and the head +
/// filter combination runs once over that row set instead of once per node.
///
/// Probabilities served by [`CascadeSession::probs`] are bit-identical to
/// [`MultiStageGcn::predict_proba`] (or [`Gcn::predict_proba`] for a
/// single-stage session) on the same graph and features.
#[derive(Debug, Clone)]
pub struct CascadeSession<'m> {
    stages: &'m [Gcn],
    filter_threshold: f32,
    caches: Vec<EmbeddingCache>,
    /// `stage_probs[s][v]` = stage `s`'s positive probability for node `v`.
    stage_probs: Vec<Vec<f32>>,
    /// Combined cascade probability per node.
    probs: Vec<f32>,
}

impl<'m> CascadeSession<'m> {
    /// Opens a session over a single GCN (a one-stage cascade; the filter
    /// threshold is never consulted because the only stage is the last).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph.
    pub fn for_gcn(gcn: &'m Gcn, t: &GraphTensors, x: &Matrix) -> Result<Self> {
        Self::open(
            std::slice::from_ref(gcn),
            0.0,
            t,
            x,
            &Budget::unlimited(),
            &mut MatrixBackend::serial(),
        )
    }

    /// [`CascadeSession::for_gcn`] under a cooperative work [`Budget`];
    /// the opening full pass charges one unit per node per layer.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph, or a budget
    /// error from the inter-layer checkpoints.
    pub fn for_gcn_budgeted(
        gcn: &'m Gcn,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Self> {
        Self::open(
            std::slice::from_ref(gcn),
            0.0,
            t,
            x,
            budget,
            &mut MatrixBackend::serial(),
        )
    }

    /// [`CascadeSession::for_gcn_budgeted`] through an explicit
    /// [`MatrixBackend`] for the opening full pass. The session it
    /// produces is bit-identical to the serial one; later
    /// `refresh`/`revert` calls always use the serial dirty-halo path.
    ///
    /// # Errors
    ///
    /// As [`CascadeSession::for_gcn_budgeted`], plus
    /// [`TensorError::StaleCache`] from a stale partitioned backend.
    pub fn for_gcn_budgeted_with(
        gcn: &'m Gcn,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Self> {
        Self::open(std::slice::from_ref(gcn), 0.0, t, x, budget, backend)
    }

    /// Opens a session over a trained cascade.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph.
    pub fn for_cascade(model: &'m MultiStageGcn, t: &GraphTensors, x: &Matrix) -> Result<Self> {
        Self::open(
            model.stages(),
            model.filter_threshold(),
            t,
            x,
            &Budget::unlimited(),
            &mut MatrixBackend::serial(),
        )
    }

    /// [`CascadeSession::for_cascade`] under a cooperative work
    /// [`Budget`]; the opening full pass charges one unit per node per
    /// layer across every stage.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph, or a budget
    /// error from the inter-layer checkpoints.
    pub fn for_cascade_budgeted(
        model: &'m MultiStageGcn,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Self> {
        Self::open(
            model.stages(),
            model.filter_threshold(),
            t,
            x,
            budget,
            &mut MatrixBackend::serial(),
        )
    }

    /// [`CascadeSession::for_cascade_budgeted`] through an explicit
    /// [`MatrixBackend`] for the opening full pass (every stage shares
    /// the one backend — the adjacency, and hence the partitioning, is
    /// stage-independent). Bit-identical to the serial open.
    ///
    /// # Errors
    ///
    /// As [`CascadeSession::for_cascade_budgeted`], plus
    /// [`TensorError::StaleCache`] from a stale partitioned backend.
    pub fn for_cascade_budgeted_with(
        model: &'m MultiStageGcn,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Self> {
        Self::open(
            model.stages(),
            model.filter_threshold(),
            t,
            x,
            budget,
            backend,
        )
    }

    /// Reopens a session from persisted per-stage caches (e.g. a warm
    /// restart reloading embedding pages), running only the classifier
    /// heads — no SpMM, no per-layer recompute. The resulting session is
    /// indistinguishable from one opened fresh on the same graph state:
    /// probabilities are recomputed from the cached final embeddings, so
    /// they are bit-identical to [`CascadeSession::for_cascade`]'s.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if the cache count differs from
    /// the stage count, [`TensorError::StaleCache`] if any cache was
    /// built at a different graph generation, and
    /// [`TensorError::ShapeMismatch`] if a cache's rows, depth, or
    /// widths disagree with the graph and model.
    pub fn from_caches(
        model: &'m MultiStageGcn,
        t: &GraphTensors,
        x: &Matrix,
        caches: Vec<EmbeddingCache>,
    ) -> Result<Self> {
        let stages = model.stages();
        let n = t.node_count();
        if caches.len() != stages.len() {
            return Err(TensorError::LengthMismatch {
                expected: stages.len(),
                actual: caches.len(),
            });
        }
        if x.rows() != n {
            return Err(TensorError::ShapeMismatch {
                op: "CascadeSession::from_caches",
                lhs: (n, x.cols()),
                rhs: x.shape(),
            });
        }
        for (gcn, cache) in stages.iter().zip(&caches) {
            if cache.generation() != t.generation() {
                return Err(TensorError::StaleCache {
                    cache: cache.generation(),
                    graph: t.generation(),
                });
            }
            if cache.layers().len() != gcn.depth() {
                return Err(TensorError::LengthMismatch {
                    expected: gcn.depth(),
                    actual: cache.layers().len(),
                });
            }
            for layer in cache.layers() {
                if layer.rows() != n {
                    return Err(TensorError::ShapeMismatch {
                        op: "CascadeSession::from_caches",
                        lhs: (n, layer.cols()),
                        rhs: layer.shape(),
                    });
                }
            }
        }
        let mut stage_probs = Vec::with_capacity(stages.len());
        for (gcn, cache) in stages.iter().zip(&caches) {
            stage_probs.push(ops::softmax_col(
                &gcn.head().predict(cache.final_embedding())?,
                1,
            ));
        }
        let mut session = CascadeSession {
            stages,
            filter_threshold: model.filter_threshold(),
            caches,
            stage_probs,
            probs: vec![0.0; n],
        };
        for r in 0..n {
            session.probs[r] = session.combine_row(r);
        }
        Ok(session)
    }

    /// Consumes the session, handing back its per-stage embedding caches
    /// so a caller can persist them (the warm-restart save path).
    pub fn into_caches(self) -> Vec<EmbeddingCache> {
        self.caches
    }

    fn open(
        stages: &'m [Gcn],
        filter_threshold: f32,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Self> {
        let n = t.node_count();
        let mut caches = Vec::with_capacity(stages.len());
        let mut stage_probs = Vec::with_capacity(stages.len());
        for gcn in stages {
            let cache = gcn.embed_cached_budgeted_with(t, x, budget, backend)?;
            stage_probs.push(ops::softmax_col(
                &gcn.head().predict(cache.final_embedding())?,
                1,
            ));
            caches.push(cache);
        }
        let mut session = CascadeSession {
            stages,
            filter_threshold,
            caches,
            stage_probs,
            probs: vec![0.0; n],
        };
        for r in 0..n {
            session.probs[r] = session.combine_row(r);
        }
        Ok(session)
    }

    /// Per-row replica of the cascade combination in
    /// [`MultiStageGcn::predict_proba`]; row-local, so it can be re-run for
    /// just the refreshed rows.
    fn combine_row(&self, r: usize) -> f32 {
        let last = self.stage_probs.len() - 1;
        let mut out = 0.0f32;
        let mut alive = true;
        for (s, sp) in self.stage_probs.iter().enumerate() {
            if !alive {
                continue;
            }
            let p = sp[r];
            if s == last {
                out = p;
            } else if p < self.filter_threshold {
                alive = false;
                out = p.min(0.49);
            }
        }
        out
    }

    /// Re-derives embeddings and probabilities after the feature rows
    /// `dirty` changed, recomputing only each stage's D-hop halo. Returns a
    /// delta that [`CascadeSession::revert`] can undo — the preview path.
    ///
    /// # Errors
    ///
    /// Propagates [`Gcn::embed_incremental`] errors (stale cache, shape or
    /// index mismatch). Validation runs against every stage identically, so
    /// an error from the first stage leaves the session unmutated.
    pub fn refresh(
        &mut self,
        t: &GraphTensors,
        x: &Matrix,
        dirty: &[usize],
    ) -> Result<SessionDelta> {
        self.refresh_budgeted(t, x, dirty, &Budget::unlimited())
    }

    /// [`CascadeSession::refresh`] under a cooperative work [`Budget`]:
    /// every stage's halo recompute charges the budget per layer. A budget
    /// stop mid-refresh rolls back the stages already patched, leaving the
    /// session exactly as before the call.
    ///
    /// # Errors
    ///
    /// As [`CascadeSession::refresh`], plus budget errors
    /// ([`TensorError::BudgetExceeded`] / [`TensorError::Cancelled`]).
    pub fn refresh_budgeted(
        &mut self,
        t: &GraphTensors,
        x: &Matrix,
        dirty: &[usize],
        budget: &Budget,
    ) -> Result<SessionDelta> {
        let mut stage_deltas = Vec::with_capacity(self.stages.len());
        for (gcn, cache) in self.stages.iter().zip(&mut self.caches) {
            match gcn.embed_incremental_budgeted(t, x, cache, dirty, budget) {
                Ok(delta) => stage_deltas.push(delta),
                Err(e) => {
                    // Earlier stages already adopted the new rows; restore
                    // them so an interrupted refresh is side-effect free.
                    for (cache, d) in self.caches.iter_mut().zip(stage_deltas) {
                        cache.revert(d);
                    }
                    return Err(e);
                }
            }
        }
        // The halo is graph-structural, hence identical across stages.
        let rows: Vec<usize> = stage_deltas[0].final_rows().to_vec();
        let mut old_stage_probs = Vec::with_capacity(self.stages.len());
        for (s, gcn) in self.stages.iter().enumerate() {
            let gathered = self.caches[s].final_embedding().gather_rows(&rows);
            let probs = ops::softmax_col(&gcn.head().predict(&gathered)?, 1);
            let old: Vec<f32> = rows.iter().map(|&r| self.stage_probs[s][r]).collect();
            for (&r, &p) in rows.iter().zip(&probs) {
                self.stage_probs[s][r] = p;
            }
            old_stage_probs.push(old);
        }
        let old_probs: Vec<f32> = rows.iter().map(|&r| self.probs[r]).collect();
        for &r in &rows {
            self.probs[r] = self.combine_row(r);
        }
        let rows_computed = stage_deltas
            .iter()
            .map(|d| d.rows_computed() as u64)
            .sum::<u64>();
        let rows_full =
            self.stages.iter().map(|g| g.depth() as u64).sum::<u64>() * t.node_count() as u64;
        let obs = gcnt_obs::global();
        if obs.is_enabled() {
            obs.incr(gcnt_obs::counters::CORE_SESSION_REFRESHES);
            obs.add(gcnt_obs::counters::CORE_INCR_ROWS_COMPUTED, rows_computed);
            obs.add(
                gcnt_obs::counters::CORE_INCR_ROWS_REUSED,
                rows_full.saturating_sub(rows_computed),
            );
        }
        Ok(SessionDelta {
            stage_deltas,
            rows,
            old_stage_probs,
            old_probs,
            rows_computed,
            rows_full,
        })
    }

    /// Undoes a [`CascadeSession::refresh`], restoring embeddings and
    /// probabilities bit-for-bit. Deltas must be reverted in reverse order
    /// of application.
    pub fn revert(&mut self, delta: SessionDelta) {
        gcnt_obs::global().incr(gcnt_obs::counters::CORE_SESSION_REVERTS);
        let SessionDelta {
            stage_deltas,
            rows,
            old_stage_probs,
            old_probs,
            ..
        } = delta;
        for (cache, d) in self.caches.iter_mut().zip(stage_deltas) {
            cache.revert(d);
        }
        for (sp, old) in self.stage_probs.iter_mut().zip(old_stage_probs) {
            for (&r, v) in rows.iter().zip(old) {
                sp[r] = v;
            }
        }
        for (&r, v) in rows.iter().zip(old_probs) {
            self.probs[r] = v;
        }
    }

    /// Adopts a grown graph after a committed observation-point insertion:
    /// extends every cache and probability vector to the new node count
    /// (new entries zeroed) and the new generation. The caller must include
    /// the inserted node and every SCOAP-changed node in the next
    /// [`CascadeSession::refresh`] dirty set to make the placeholders real.
    pub fn sync_nodes(&mut self, t: &GraphTensors) {
        let n = t.node_count();
        for cache in &mut self.caches {
            cache.extend_to(n, t.generation());
        }
        for sp in &mut self.stage_probs {
            sp.resize(n, 0.0);
        }
        self.probs.resize(n, 0.0);
    }

    /// Combined cascade probability per node, kept current by
    /// [`CascadeSession::refresh`] / [`CascadeSession::sync_nodes`].
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// The per-stage embedding caches (for consistency linting).
    pub fn caches(&self) -> &[EmbeddingCache] {
        &self.caches
    }

    /// Number of nodes the session currently tracks.
    pub fn node_count(&self) -> usize {
        self.probs.len()
    }

    /// Embedding rows one *full* inference over this session's stages would
    /// compute for an `n`-node graph.
    pub fn full_rows(&self, n: usize) -> u64 {
        self.stages.iter().map(|g| g.depth() as u64).sum::<u64>() * n as u64
    }
}

impl MultiStageGcn {
    /// Opens an incremental-inference session for this cascade; see
    /// [`CascadeSession`]. The session borrows the model and serves
    /// probabilities bit-identical to [`MultiStageGcn::predict_proba`]
    /// while recomputing only dirty-cone halos on refresh.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph.
    pub fn open_session<'m>(&'m self, t: &GraphTensors, x: &Matrix) -> Result<CascadeSession<'m>> {
        CascadeSession::for_cascade(self, t, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcnConfig, GraphData};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;

    fn design(seed: u64, nodes: usize) -> (GraphData, gcnt_netlist::Netlist) {
        let net = generate(&GeneratorConfig::sized("inc", seed, nodes));
        let data = GraphData::from_netlist(&net, None).unwrap();
        (data, net)
    }

    fn small_gcn(depth: usize, seed: u64) -> Gcn {
        let cfg = GcnConfig {
            embed_dims: vec![6, 5, 4][..depth].to_vec(),
            fc_dims: vec![4],
            ..GcnConfig::default()
        };
        Gcn::new(&cfg, &mut seeded_rng(seed))
    }

    #[test]
    fn embed_cached_final_layer_matches_embed() {
        let (data, _) = design(3, 200);
        for depth in 1..=3 {
            let gcn = small_gcn(depth, 11);
            let cache = gcn.embed_cached(&data.tensors, &data.features).unwrap();
            assert_eq!(cache.layers().len(), depth);
            let full = gcn.embed(&data.tensors, &data.features).unwrap();
            assert_eq!(cache.final_embedding(), &full);
        }
    }

    #[test]
    fn embed_incremental_is_bit_identical_and_revertible() {
        let (data, _) = design(5, 300);
        for depth in 1..=3 {
            let gcn = small_gcn(depth, 23);
            let mut x = data.features.clone();
            let mut cache = gcn.embed_cached(&data.tensors, &x).unwrap();
            let pristine = cache.clone();
            // Perturb a few feature rows.
            let dirty = [7usize, 19, 19, 42];
            for &r in &dirty {
                x.set(r, 3, x.get(r, 3) + 1.25);
            }
            let delta = gcn
                .embed_incremental(&data.tensors, &x, &mut cache, &dirty)
                .unwrap();
            assert!(delta.rows_computed() > 0);
            assert!(!delta.final_rows().is_empty());
            // Every layer equals a from-scratch recompute, bit for bit.
            let fresh = gcn.embed_cached(&data.tensors, &x).unwrap();
            assert_eq!(cache.layers(), fresh.layers());
            // Revert restores the original cache, bit for bit.
            cache.revert(delta);
            assert_eq!(cache.layers(), pristine.layers());
        }
    }

    #[test]
    fn stale_cache_is_refused() {
        let (data, mut net) = design(7, 120);
        let gcn = small_gcn(2, 3);
        let mut t = data.tensors.clone();
        let mut cache = gcn.embed_cached(&t, &data.features).unwrap();
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty())
            .expect("generated design has internal nodes");
        let op = net.insert_observation_point(target).unwrap();
        t.insert_observation_point(target, op).unwrap();
        let err = gcn.embed_incremental(&t, &data.features, &mut cache, &[0]);
        assert!(matches!(
            err,
            Err(TensorError::StaleCache { cache: 0, graph: 1 })
        ));
    }

    #[test]
    fn session_probs_match_predict_proba() {
        let (data, _) = design(9, 250);
        let stages = vec![small_gcn(2, 31), small_gcn(2, 32), small_gcn(1, 33)];
        let model = MultiStageGcn::from_stages(stages, 0.25);
        let session = model.open_session(&data.tensors, &data.features).unwrap();
        let reference = model.predict_proba(&data.tensors, &data.features).unwrap();
        assert_eq!(session.probs(), reference.as_slice());
        // Single-stage sessions match the bare GCN too.
        let gcn = small_gcn(2, 41);
        let single = CascadeSession::for_gcn(&gcn, &data.tensors, &data.features).unwrap();
        let reference = gcn.predict_proba(&data.tensors, &data.features).unwrap();
        assert_eq!(single.probs(), reference.as_slice());
    }

    #[test]
    fn session_round_trips_through_persisted_caches() {
        let (data, _) = design(21, 220);
        let stages = vec![small_gcn(2, 71), small_gcn(1, 72)];
        let model = MultiStageGcn::from_stages(stages, 0.25);
        let reference = model.open_session(&data.tensors, &data.features).unwrap();
        let expected = reference.probs().to_vec();
        // Persist-and-restore: rebuild each cache from its raw layers, as
        // a warm restart loading embedding pages would.
        let caches: Vec<EmbeddingCache> = reference
            .into_caches()
            .into_iter()
            .map(|c| {
                let generation = c.generation();
                EmbeddingCache::from_layers(c.layers().to_vec(), generation).unwrap()
            })
            .collect();
        let warm =
            CascadeSession::from_caches(&model, &data.tensors, &data.features, caches).unwrap();
        assert_eq!(warm.probs(), expected.as_slice());

        // Validation refuses mismatched inputs with typed errors.
        assert!(matches!(
            CascadeSession::from_caches(&model, &data.tensors, &data.features, Vec::new()),
            Err(TensorError::LengthMismatch { .. })
        ));
        let stale: Vec<EmbeddingCache> = model
            .open_session(&data.tensors, &data.features)
            .unwrap()
            .into_caches()
            .into_iter()
            .map(|c| EmbeddingCache::from_layers(c.layers().to_vec(), 7).unwrap())
            .collect();
        assert!(matches!(
            CascadeSession::from_caches(&model, &data.tensors, &data.features, stale),
            Err(TensorError::StaleCache { cache: 7, .. })
        ));
        assert!(matches!(
            EmbeddingCache::from_layers(Vec::new(), 0),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn session_refresh_matches_full_recompute_and_reverts() {
        let (data, _) = design(13, 300);
        let stages = vec![small_gcn(2, 51), small_gcn(2, 52)];
        let model = MultiStageGcn::from_stages(stages, 0.25);
        let mut x = data.features.clone();
        let mut session = model.open_session(&data.tensors, &x).unwrap();
        let before = session.probs().to_vec();
        let dirty = [3usize, 88, 120];
        for &r in &dirty {
            x.set(r, 3, x.get(r, 3) - 0.75);
        }
        let delta = session.refresh(&data.tensors, &x, &dirty).unwrap();
        assert!(delta.rows_computed() > 0);
        assert!(delta.rows_computed() < delta.rows_full_equivalent());
        let reference = model.predict_proba(&data.tensors, &x).unwrap();
        assert_eq!(session.probs(), reference.as_slice());
        session.revert(delta);
        assert_eq!(session.probs(), before.as_slice());
    }

    #[test]
    fn sync_nodes_then_refresh_absorbs_an_insertion() {
        let (data, mut net) = design(17, 200);
        let gcn = small_gcn(2, 61);
        let mut t = data.tensors.clone();
        let mut x = data.features.clone();
        let mut session = CascadeSession::for_gcn(&gcn, &t, &x).unwrap();
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty())
            .expect("generated design has internal nodes");
        let op = net.insert_observation_point(target).unwrap();
        t.insert_observation_point(target, op).unwrap();
        x.push_row(&[0.0, 1.0, 1.0, 0.0]).unwrap();
        session.sync_nodes(&t);
        assert_eq!(session.node_count(), t.node_count());
        session
            .refresh(&t, &x, &[target.index(), op.index()])
            .unwrap();
        let reference = gcn.predict_proba(&t, &x).unwrap();
        assert_eq!(session.probs(), reference.as_slice());
    }
}
