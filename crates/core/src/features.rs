//! Node attribute construction: the `[LL, C0, C1, O]` vectors of §3.1.
//!
//! SCOAP values are heavy-tailed (and saturate at [`gcnt_netlist::SCOAP_INF`]
//! for unobservable nets), so the raw attributes are squashed with
//! `log2(1 + x)` before the per-column standardisation that training uses.
//! The normaliser is computed on the training designs and *re-applied* to
//! unseen designs, preserving the inductive property of the model (§2.1).

use serde::{Deserialize, Serialize};

use gcnt_netlist::{logic_levels, Netlist, Result as NetResult, Scoap};
use gcnt_tensor::{ops, Matrix, Result as TensorResult, TensorError};

/// Number of raw node attributes: `[LL, C0, C1, O]`.
pub const RAW_DIM: usize = 4;

/// Attribute row assigned to a freshly inserted observation point.
///
/// The paper sets the new node's attributes to `[0, 1, 1, 0]` (§4): level
/// and observability 0, unit controllabilities.
pub const OBSERVATION_POINT_ATTRS: [f32; RAW_DIM] = [0.0, 1.0, 1.0, 0.0];

/// Builds the raw (unnormalised, but log-squashed) feature matrix of a
/// netlist from precomputed logic levels and SCOAP measures.
pub fn raw_features(levels: &[u32], scoap: &Scoap) -> Matrix {
    let n = levels.len();
    let mut m = Matrix::zeros(n, RAW_DIM);
    let measures = levels
        .iter()
        .zip(scoap.cc0_all())
        .zip(scoap.cc1_all())
        .zip(scoap.co_all());
    for (i, (((&level, &cc0), &cc1), &co)) in measures.enumerate() {
        m.row_mut(i)
            .copy_from_slice(&[squash(level), squash(cc0), squash(cc1), squash(co)]);
    }
    m
}

/// Computes raw features directly from a netlist.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn raw_features_of(net: &Netlist) -> NetResult<Matrix> {
    let levels = logic_levels(net)?;
    let scoap = Scoap::compute(net)?;
    Ok(raw_features(&levels, &scoap))
}

/// `log2(1 + x)` squashing of a SCOAP-scale integer.
pub fn squash(x: u32) -> f32 {
    (1.0 + x as f64).log2() as f32
}

/// Number of attributes in the COP-extended variant:
/// `[LL, C0, C1, O, log-p1, log-obs]`.
pub const EXTENDED_DIM: usize = 6;

/// Builds the COP-extended feature matrix: the paper's four attributes
/// plus log-scaled COP signal probability and COP observability
/// (probability-based testability, see [`gcnt_netlist::Cop`]). An
/// extension beyond the paper — pass `input_dim: EXTENDED_DIM` in
/// [`crate::GcnConfig`] to train on it.
///
/// # Errors
///
/// Returns a netlist error if the design has a combinational cycle.
pub fn extended_features_of(net: &Netlist) -> NetResult<Matrix> {
    let base = raw_features_of(net)?;
    let cop = gcnt_netlist::Cop::compute(net)?;
    let n = base.rows();
    let mut m = Matrix::zeros(n, EXTENDED_DIM);
    let cop_cols = cop.p1_all().iter().zip(cop.observability_all());
    for (i, (&p1, &obs)) in cop_cols.enumerate() {
        // log2 of probabilities, floored to keep values finite.
        let tail = [
            (p1.max(1e-12)).log2() as f32,
            (obs.max(1e-12)).log2() as f32,
        ];
        let cells = base.row(i).iter().copied().chain(tail);
        for (dst, src) in m.row_mut(i).iter_mut().zip(cells) {
            *dst = src;
        }
    }
    Ok(m)
}

/// Per-column standardisation statistics, fitted on training data and
/// applied to any design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureNormalizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl FeatureNormalizer {
    /// Fits the normaliser on one or more raw feature matrices
    /// (concatenating their statistics).
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or the matrices disagree on column count;
    /// [`FeatureNormalizer::try_fit`] reports the same conditions as a
    /// typed error instead.
    pub fn fit(mats: &[&Matrix]) -> Self {
        match Self::try_fit(mats) {
            Ok(n) => n,
            Err(e) => panic!("FeatureNormalizer::fit: {e}"),
        }
    }

    /// Fallible variant of [`FeatureNormalizer::fit`] for callers (CLI,
    /// checkpoint restore) that must surface bad input as an error rather
    /// than a panic.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `mats` is empty and
    /// [`TensorError::ShapeMismatch`] when the matrices disagree on column
    /// count.
    pub fn try_fit(mats: &[&Matrix]) -> TensorResult<Self> {
        let Some((first, rest)) = mats.split_first() else {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        };
        let mut stacked = (*first).clone();
        for m in rest {
            stacked = stacked.vstack(m)?;
        }
        let means = ops::column_means(&stacked);
        let stds = ops::column_stds(&stacked, &means);
        Ok(FeatureNormalizer { means, stds })
    }

    /// Applies the normalisation to a raw feature matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted dimension.
    pub fn apply(&self, raw: &Matrix) -> Matrix {
        ops::apply_standardization(raw, &self.means, &self.stds)
    }

    /// Normalises the [`OBSERVATION_POINT_ATTRS`] row for appending to a
    /// normalised feature matrix.
    pub fn observation_point_row(&self) -> Vec<f32> {
        let mut raw = Matrix::zeros(1, RAW_DIM);
        raw.row_mut(0).copy_from_slice(&OBSERVATION_POINT_ATTRS);
        self.apply(&raw).row(0).to_vec()
    }

    /// Normalises a single raw cell value for column `col`, bit-identical
    /// to the corresponding element of [`FeatureNormalizer::apply`].
    ///
    /// Used by the flow's incremental feature maintenance to patch
    /// individual cells of an already-normalised matrix without
    /// re-normalising the whole design.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range for the fitted dimension.
    pub fn normalize_cell(&self, col: usize, raw: f32) -> f32 {
        let mut v = raw;
        v -= self.means[col];
        if self.stds[col] > 1e-12 {
            v /= self.stds[col];
        }
        v
    }

    /// The fitted per-column means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// The fitted per-column standard deviations.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, CellKind, GeneratorConfig, SCOAP_INF};

    #[test]
    fn squash_is_monotone_and_finite() {
        assert_eq!(squash(0), 0.0);
        assert!(squash(1) > 0.0);
        assert!(squash(100) > squash(10));
        assert!(squash(SCOAP_INF).is_finite());
    }

    #[test]
    fn raw_features_shape_and_values() {
        let mut net = Netlist::new("t");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let f = raw_features_of(&net).unwrap();
        assert_eq!(f.shape(), (3, RAW_DIM));
        // Input: LL=0 -> squash 0; CC0=CC1=1 -> squash(1)=1.
        assert_eq!(f.get(a.index(), 0), 0.0);
        assert_eq!(f.get(a.index(), 1), 1.0);
        assert_eq!(f.get(a.index(), 2), 1.0);
    }

    #[test]
    fn normalizer_fit_apply_round_trip() {
        let net = generate(&GeneratorConfig::sized("n", 3, 800));
        let raw = raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let x = norm.apply(&raw);
        // Each column should be ~zero-mean, ~unit-std after normalisation.
        let means = ops::column_means(&x);
        for m in means {
            assert!(m.abs() < 1e-3, "column mean {m}");
        }
    }

    #[test]
    fn normalizer_is_inductive() {
        // Fit on one design, apply to another: must not panic and must use
        // the *training* statistics.
        let a = generate(&GeneratorConfig::sized("a", 1, 500));
        let b = generate(&GeneratorConfig::sized("b", 2, 500));
        let ra = raw_features_of(&a).unwrap();
        let rb = raw_features_of(&b).unwrap();
        let norm = FeatureNormalizer::fit(&[&ra]);
        let xb = norm.apply(&rb);
        assert_eq!(xb.shape(), rb.shape());
    }

    #[test]
    fn observation_point_row_is_normalised() {
        let net = generate(&GeneratorConfig::sized("o", 5, 500));
        let raw = raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let row = norm.observation_point_row();
        assert_eq!(row.len(), RAW_DIM);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn extended_features_add_cop_columns() {
        let net = generate(&GeneratorConfig::sized("ext", 4, 600));
        let base = raw_features_of(&net).unwrap();
        let ext = extended_features_of(&net).unwrap();
        assert_eq!(ext.cols(), EXTENDED_DIM);
        assert_eq!(ext.rows(), base.rows());
        for r in (0..ext.rows()).step_by(37) {
            assert_eq!(&ext.row(r)[..RAW_DIM], base.row(r));
            assert!(ext.row(r)[4] <= 0.0 + 1e-6); // log2 of a probability
            assert!(ext.row(r)[4].is_finite());
            assert!(ext.row(r)[5].is_finite());
        }
        // A GCN trains on the extended dimension without further changes.
        let norm = FeatureNormalizer::fit(&[&ext]);
        let x = norm.apply(&ext);
        let t = crate::GraphTensors::from_netlist(&net);
        let gcn = crate::Gcn::new(
            &crate::GcnConfig {
                input_dim: EXTENDED_DIM,
                embed_dims: vec![8],
                fc_dims: vec![8],
                ..crate::GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(0),
        );
        let logits = gcn.predict(&t, &x).unwrap();
        assert_eq!(logits.rows(), net.node_count());
    }

    #[test]
    fn normalize_cell_matches_apply_bitwise() {
        let net = generate(&GeneratorConfig::sized("cell", 6, 700));
        let raw = raw_features_of(&net).unwrap();
        let norm = FeatureNormalizer::fit(&[&raw]);
        let full = norm.apply(&raw);
        for r in (0..raw.rows()).step_by(23) {
            for c in 0..RAW_DIM {
                let cell = norm.normalize_cell(c, raw.get(r, c));
                assert_eq!(cell.to_bits(), full.get(r, c).to_bits(), "({r}, {c})");
            }
        }
    }

    #[test]
    fn try_fit_reports_typed_errors() {
        assert!(matches!(
            FeatureNormalizer::try_fit(&[]),
            Err(TensorError::LengthMismatch { .. })
        ));
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(matches!(
            FeatureNormalizer::try_fit(&[&a, &b]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(FeatureNormalizer::try_fit(&[&a]).is_ok());
    }

    #[test]
    fn fit_multiple_designs() {
        let a = generate(&GeneratorConfig::sized("a", 1, 400));
        let b = generate(&GeneratorConfig::sized("b", 2, 400));
        let ra = raw_features_of(&a).unwrap();
        let rb = raw_features_of(&b).unwrap();
        let joint = FeatureNormalizer::fit(&[&ra, &rb]);
        let solo = FeatureNormalizer::fit(&[&ra]);
        assert_ne!(joint.means(), solo.means());
    }
}
