//! Single-worker GCN training.
//!
//! Training is full-batch per graph: the forward pass runs over the whole
//! netlist (embeddings of unlabeled/unselected nodes are still needed as
//! neighbourhood context), but the loss is *masked* to a node subset —
//! either a balanced sample (Table 2 protocol) or the active set of a
//! multi-stage cascade (§3.3).

use serde::{Deserialize, Serialize};

use gcnt_nn::loss::weighted_softmax_cross_entropy;
use gcnt_tensor::{ops, Matrix, Result};

use crate::metrics::Confusion;
use crate::{Gcn, GcnGrads, GraphData};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of full-batch epochs (the paper trains for 300).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum (`0.0` = the plain SGD of the paper).
    pub momentum: f32,
    /// Loss weight of the positive class (1.0 = unweighted).
    pub pos_weight: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 300,
            lr: 0.05,
            momentum: 0.0,
            pos_weight: 1.0,
        }
    }
}

/// Loss and masked-set accuracy after one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean weighted loss over all training graphs.
    pub loss: f32,
    /// Accuracy on the training masks.
    pub train_accuracy: f64,
}

/// Computes the masked loss and full-model gradients for one graph.
///
/// The forward pass covers the whole graph; the loss covers only the rows
/// listed in `mask`. Rows outside the mask receive zero logit gradient, so
/// they contribute context but no loss.
///
/// Returns `(loss, gradients, masked_predictions)`.
///
/// # Errors
///
/// Returns a shape error if the data and model disagree.
///
/// # Panics
///
/// Panics if `data` has no labels or a mask index is out of bounds.
pub fn masked_loss_grads(
    gcn: &Gcn,
    data: &GraphData,
    mask: &[usize],
    class_weights: &[f32; 2],
) -> Result<(f32, GcnGrads, Vec<usize>)> {
    let (logits, cache) = gcn.forward(&data.tensors, &data.features)?;
    let masked_logits = logits.gather_rows(mask);
    let labels = data.labels_at(mask);
    let (loss, dmasked) = weighted_softmax_cross_entropy(&masked_logits, &labels, class_weights);
    // Scatter the masked gradient back into a full-graph gradient.
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    for (i, &node) in mask.iter().enumerate() {
        dlogits.row_mut(node).copy_from_slice(dmasked.row(i));
    }
    let grads = gcn.backward(&data.tensors, &cache, &dlogits)?;
    let preds = ops::argmax_rows(&masked_logits);
    Ok((loss, grads, preds))
}

/// Computes one full-batch epoch over all graphs *without* applying the
/// parameter update: the mean loss, the mean gradient (graphs summed in
/// order, then scaled by `1 / graphs.len()`), and the merged confusion of
/// the masked predictions.
///
/// This is the shared epoch kernel of [`train`] and the resilient trainer
/// in `gcnt-runtime`: both must produce bit-identical updates, so both go
/// through this function (or, for the parallel scheme, sum per-worker
/// results in the same fixed graph order).
///
/// # Errors
///
/// Returns a shape error if any graph disagrees with the model.
///
/// # Panics
///
/// Panics if `graphs` and `masks` lengths differ, or a graph is unlabeled.
pub fn epoch_grads(
    gcn: &Gcn,
    graphs: &[&GraphData],
    masks: &[Vec<usize>],
    class_weights: &[f32; 2],
) -> Result<(f32, GcnGrads, Confusion)> {
    assert_eq!(graphs.len(), masks.len(), "one mask per graph");
    let mut total = gcn.zero_grads();
    let mut loss_sum = 0.0f32;
    let mut confusion = Confusion::default();
    for (data, mask) in graphs.iter().zip(masks) {
        let (loss, grads, preds) = masked_loss_grads(gcn, data, mask, class_weights)?;
        total.accumulate(&grads);
        loss_sum += loss;
        confusion.merge(&Confusion::from_predictions(&data.labels_at(mask), &preds));
    }
    total.scale(1.0 / graphs.len() as f32);
    Ok((loss_sum / graphs.len() as f32, total, confusion))
}

/// Trains on one or more graphs with plain SGD, summing gradients across
/// graphs each epoch (the serial reference for the parallel scheme of
/// §3.4.2). `masks[i]` selects the training nodes of `graphs[i]`.
///
/// Returns per-epoch statistics.
///
/// # Errors
///
/// Returns a shape error if any graph disagrees with the model.
///
/// # Panics
///
/// Panics if `graphs` and `masks` lengths differ, or a graph is unlabeled.
pub fn train(
    gcn: &mut Gcn,
    graphs: &[&GraphData],
    masks: &[Vec<usize>],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    assert_eq!(graphs.len(), masks.len(), "one mask per graph");
    let class_weights = [1.0, cfg.pos_weight];
    let mut optimizer = optimizer_for(gcn, cfg);
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let (loss, total, confusion) = epoch_grads(gcn, graphs, masks, &class_weights)?;
        apply_update(gcn, &total, cfg, &mut optimizer);
        gcnt_obs::global().incr(gcnt_obs::counters::CORE_TRAIN_EPOCHS);
        gcnt_obs::global().gauge_set(gcnt_obs::gauges::CORE_TRAIN_LOSS, f64::from(loss));
        history.push(EpochStats {
            epoch,
            loss,
            train_accuracy: confusion.accuracy(),
        });
    }
    Ok(history)
}

/// Builds the optimiser state for a training run (`None` when plain SGD
/// suffices, i.e. zero momentum).
///
/// Public so checkpoint-aware trainers can rebuild matching state when a
/// checkpoint carries none.
pub fn optimizer_for(gcn: &mut Gcn, cfg: &TrainConfig) -> Option<gcnt_nn::ModelOptimizer> {
    if cfg.momentum == 0.0 {
        return None;
    }
    let lens: Vec<usize> = gcn.params_mut().iter().map(|s| s.len()).collect();
    Some(gcnt_nn::ModelOptimizer::new(
        gcnt_nn::OptimizerConfig::Sgd(gcnt_nn::SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
        }),
        lens,
    ))
}

/// Applies one parameter update, through the momentum optimiser when one
/// is present. `cfg.lr` is read on the plain-SGD path; a trainer that
/// backs off the learning rate passes an adjusted copy of the config.
pub fn apply_update(
    gcn: &mut Gcn,
    grads: &GcnGrads,
    cfg: &TrainConfig,
    optimizer: &mut Option<gcnt_nn::ModelOptimizer>,
) {
    match optimizer {
        Some(opt) => opt.step(gcn.params_mut(), grads.params()),
        None => gcn.apply_sgd(grads, cfg.lr),
    }
}

/// Evaluates a model on a masked subset of one graph.
///
/// # Errors
///
/// Returns a shape error if the data and model disagree.
///
/// # Panics
///
/// Panics if `data` has no labels or a mask index is out of bounds.
pub fn evaluate(gcn: &Gcn, data: &GraphData, mask: &[usize]) -> Result<Confusion> {
    let logits = gcn.predict(&data.tensors, &data.features)?;
    let preds = ops::argmax_rows(&logits.gather_rows(mask));
    Ok(Confusion::from_predictions(&data.labels_at(mask), &preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{balanced_indices, GcnConfig};
    use gcnt_netlist::{generate, GeneratorConfig, Scoap};
    use gcnt_nn::seeded_rng;

    /// A small design with labels derived from SCOAP observability (a
    /// learnable but non-trivial target since features are log-squashed
    /// and normalised).
    fn labeled_data(seed: u64) -> GraphData {
        let net = generate(&GeneratorConfig::sized("train", seed, 600));
        let scoap = Scoap::compute(&net).unwrap();
        let mut cos: Vec<u32> = net.nodes().map(|v| scoap.co(v)).collect();
        cos.sort_unstable();
        let thresh = cos[cos.len() * 95 / 100];
        let labels: Vec<u8> = net
            .nodes()
            .map(|v| u8::from(scoap.co(v) >= thresh.max(1)))
            .collect();
        GraphData::from_netlist(&net, None)
            .unwrap()
            .with_labels(labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = labeled_data(31);
        let mut rng = seeded_rng(0);
        let mask = balanced_indices(&data.labels, &mut rng);
        assert!(mask.len() >= 10, "need some positives, got {}", mask.len());
        let mut gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8, 16],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.1,
            pos_weight: 1.0,
            momentum: 0.0,
        };
        let history = train(&mut gcn, &[&data], std::slice::from_ref(&mask), &cfg).unwrap();
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last}");
        // Balanced accuracy should beat coin-flipping comfortably.
        let acc = evaluate(&gcn, &data, &mask).unwrap().accuracy();
        assert!(acc > 0.7, "balanced accuracy {acc}");
    }

    #[test]
    fn multi_graph_training_runs() {
        let d1 = labeled_data(32);
        let d2 = labeled_data(33);
        let mut rng = seeded_rng(1);
        let m1 = balanced_indices(&d1.labels, &mut rng);
        let m2 = balanced_indices(&d2.labels, &mut rng);
        let mut gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 10,
            lr: 0.05,
            pos_weight: 2.0,
            momentum: 0.0,
        };
        let history = train(&mut gcn, &[&d1, &d2], &[m1, m2], &cfg).unwrap();
        assert_eq!(history.len(), 10);
        assert!(history.iter().all(|s| s.loss.is_finite()));
    }

    #[test]
    fn masked_grads_ignore_unmasked_rows() {
        // Gradient through a mask of all nodes vs a subset must differ.
        let data = labeled_data(34);
        let mut rng = seeded_rng(2);
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![4],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut rng,
        );
        let small_mask: Vec<usize> = (0..10).collect();
        let (_, g_small, _) = masked_loss_grads(&gcn, &data, &small_mask, &[1.0, 1.0]).unwrap();
        let big_mask: Vec<usize> = (0..data.node_count()).collect();
        let (_, g_big, _) = masked_loss_grads(&gcn, &data, &big_mask, &[1.0, 1.0]).unwrap();
        assert_ne!(g_small.agg_weights, g_big.agg_weights);
    }

    #[test]
    fn momentum_training_converges() {
        let data = labeled_data(36);
        let mut rng = seeded_rng(3);
        let mask = balanced_indices(&data.labels, &mut rng);
        let mut gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.02,
            momentum: 0.9,
            pos_weight: 1.0,
        };
        let history = train(&mut gcn, &[&data], std::slice::from_ref(&mask), &cfg).unwrap();
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let data = labeled_data(35);
        let mask: Vec<usize> = (0..50).collect();
        let run = || {
            let mut rng = seeded_rng(7);
            let mut gcn = Gcn::new(
                &GcnConfig {
                    embed_dims: vec![4],
                    fc_dims: vec![4],
                    ..GcnConfig::default()
                },
                &mut rng,
            );
            let cfg = TrainConfig {
                epochs: 5,
                lr: 0.05,
                pos_weight: 1.0,
                momentum: 0.0,
            };
            train(&mut gcn, &[&data], std::slice::from_ref(&mask), &cfg).unwrap()
        };
        let h1 = run();
        let h2 = run();
        assert_eq!(h1.last().unwrap().loss, h2.last().unwrap().loss);
    }
}
