use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use gcnt_netlist::{Netlist, Result as NetResult};
use gcnt_tensor::Matrix;

use crate::features::{raw_features_of, FeatureNormalizer};
use crate::GraphTensors;

/// A netlist prepared for GCN consumption: sparse tensors, normalised
/// features and (optionally) node labels.
///
/// # Examples
///
/// ```
/// use gcnt_core::GraphData;
/// use gcnt_netlist::{generate, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("d", 11, 500));
/// let data = GraphData::from_netlist(&net, None)?;
/// assert_eq!(data.features.rows(), net.node_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphData {
    /// Design name.
    pub name: String,
    /// Sparse adjacency tensors.
    pub tensors: GraphTensors,
    /// Raw (log-squashed, unnormalised) `[LL, C0, C1, O]` features.
    pub raw_features: Matrix,
    /// Normalised features actually fed to the model.
    pub features: Matrix,
    /// The normaliser that produced [`GraphData::features`] (needed to
    /// normalise attributes of nodes added later, e.g. observation points).
    pub normalizer: FeatureNormalizer,
    /// Per-node labels: 1 = difficult-to-observe, 0 = easy-to-observe.
    /// Empty for unlabeled designs.
    pub labels: Vec<u8>,
}

impl GraphData {
    /// Prepares a netlist: builds tensors, computes `[LL, C0, C1, O]` and
    /// normalises. If `normalizer` is `None`, statistics are fitted on this
    /// design (do that for training designs; pass the *training* normaliser
    /// for test designs to stay inductive).
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the design has a combinational cycle.
    pub fn from_netlist(net: &Netlist, normalizer: Option<&FeatureNormalizer>) -> NetResult<Self> {
        let raw = raw_features_of(net)?;
        let normalizer = match normalizer {
            Some(n) => n.clone(),
            None => FeatureNormalizer::fit(&[&raw]),
        };
        let features = normalizer.apply(&raw);
        Ok(GraphData {
            name: net.name().to_string(),
            tensors: GraphTensors::from_netlist(net),
            raw_features: raw,
            features,
            normalizer,
            labels: Vec::new(),
        })
    }

    /// Attaches node labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the node count;
    /// [`GraphData::try_with_labels`] reports the same condition as a typed
    /// error instead.
    pub fn with_labels(self, labels: Vec<u8>) -> Self {
        match self.try_with_labels(labels) {
            Ok(d) => d,
            Err(e) => panic!("one label per node: {e}"),
        }
    }

    /// Fallible variant of [`GraphData::with_labels`] for callers (CLI,
    /// checkpoint restore) that must surface a label/node mismatch as an
    /// error rather than a panic.
    ///
    /// # Errors
    ///
    /// Returns [`gcnt_tensor::TensorError::LengthMismatch`] if
    /// `labels.len()` differs from the node count.
    pub fn try_with_labels(mut self, labels: Vec<u8>) -> gcnt_tensor::Result<Self> {
        if labels.len() != self.tensors.node_count() {
            return Err(gcnt_tensor::TensorError::LengthMismatch {
                expected: self.tensors.node_count(),
                actual: labels.len(),
            });
        }
        self.labels = labels;
        Ok(self)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.tensors.node_count()
    }

    /// Number of positive (difficult-to-observe) labels.
    pub fn positive_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1).count()
    }

    /// Number of negative labels.
    pub fn negative_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 0).count()
    }

    /// Labels gathered at the given node indices.
    pub fn labels_at(&self, indices: &[usize]) -> Vec<usize> {
        indices.iter().map(|&i| self.labels[i] as usize).collect()
    }
}

/// Builds a balanced index set: *all* positive nodes plus an equal number
/// of randomly sampled negatives — exactly the paper's balanced-dataset
/// protocol for Table 2 ("using all the positive nodes and sampling the
/// same number of negative nodes randomly", §5).
///
/// Returns indices in shuffled order.
pub fn balanced_indices(labels: &[u8], rng: &mut gcnt_nn::Rng) -> Vec<usize> {
    let positives: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == 1)
        .map(|(i, _)| i)
        .collect();
    let mut negatives: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == 0)
        .map(|(i, _)| i)
        .collect();
    negatives.shuffle(rng);
    negatives.truncate(positives.len());
    let mut out = positives;
    out.extend(negatives);
    out.shuffle(rng);
    out
}

/// Leave-one-out rotation over `n` designs: yields `(train_indices,
/// test_index)` pairs — the paper's "each time we use three designs for
/// training and the remaining one for testing" protocol (§5).
pub fn train_test_rotation(n: usize) -> Vec<(Vec<usize>, usize)> {
    (0..n)
        .map(|test| ((0..n).filter(|&i| i != test).collect(), test))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;

    fn data() -> GraphData {
        let net = generate(&GeneratorConfig::sized("d", 21, 400));
        GraphData::from_netlist(&net, None).unwrap()
    }

    #[test]
    fn features_match_node_count() {
        let d = data();
        assert_eq!(d.features.rows(), d.node_count());
        assert_eq!(d.features.cols(), crate::features::RAW_DIM);
    }

    #[test]
    fn with_labels_counts() {
        let d = data();
        let n = d.node_count();
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i % 10 == 0)).collect();
        let d = d.with_labels(labels);
        assert_eq!(d.positive_count() + d.negative_count(), n);
        assert!(d.positive_count() > 0);
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn wrong_label_count_panics() {
        data().with_labels(vec![0, 1]);
    }

    #[test]
    fn try_with_labels_reports_typed_error() {
        let d = data();
        let n = d.node_count();
        let err = d.clone().try_with_labels(vec![0, 1]);
        assert!(matches!(
            err,
            Err(gcnt_tensor::TensorError::LengthMismatch { expected, actual })
                if expected == n && actual == 2
        ));
        let ok = d.try_with_labels(vec![0; n]).unwrap();
        assert_eq!(ok.labels.len(), n);
    }

    #[test]
    fn balanced_indices_are_balanced() {
        let labels: Vec<u8> = (0..100).map(|i| u8::from(i < 7)).collect();
        let idx = balanced_indices(&labels, &mut seeded_rng(1));
        assert_eq!(idx.len(), 14);
        let pos = idx.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(pos, 7);
        // No duplicates.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 14);
    }

    #[test]
    fn balanced_indices_deterministic_per_seed() {
        let labels: Vec<u8> = (0..50).map(|i| u8::from(i % 9 == 0)).collect();
        let a = balanced_indices(&labels, &mut seeded_rng(3));
        let b = balanced_indices(&labels, &mut seeded_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_covers_all_designs() {
        let rot = train_test_rotation(4);
        assert_eq!(rot.len(), 4);
        for (train, test) in &rot {
            assert_eq!(train.len(), 3);
            assert!(!train.contains(test));
        }
        let tests: Vec<usize> = rot.iter().map(|(_, t)| *t).collect();
        assert_eq!(tests, vec![0, 1, 2, 3]);
    }

    #[test]
    fn labels_at_gathers() {
        let d = data();
        let n = d.node_count();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let d = d.with_labels(labels);
        assert_eq!(d.labels_at(&[0, 1, 2]), vec![0, 1, 0]);
    }
}
