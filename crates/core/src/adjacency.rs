use serde::{Deserialize, Serialize};

use gcnt_netlist::{Netlist, NodeId};
use gcnt_tensor::{CooMatrix, CsrMatrix, Matrix, Result};

/// Sparse-tensor view of a netlist graph, ready for matrix-form GCN
/// inference and training.
///
/// The paper's aggregation (Eq. (1)) is
///
/// ```text
/// g_v = e_v + w_pr * sum_{u in PR(v)} e_u + w_su * sum_{u in SU(v)} e_u
/// ```
///
/// which in matrix form is `G = (I + w_pr * P + w_su * S) · E`, where
/// `P[v][u] = 1` iff `u` drives `v` and `S[v][u] = 1` iff `v` drives `u`.
/// Because `w_pr` / `w_su` are *learned*, `P` and `S` are kept as separate
/// unweighted matrices; the scalars are applied per multiplication.
///
/// The COO originals are retained so that observation-point insertion can
/// extend the graph incrementally — exactly the three-tuple append of §4 —
/// followed by a cheap CSR rebuild.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphTensors {
    n: usize,
    pred_coo: CooMatrix,
    succ_coo: CooMatrix,
    pred: CsrMatrix,
    succ: CsrMatrix,
    pred_t: CsrMatrix,
    succ_t: CsrMatrix,
    /// Adjacency lists for the recursion-based baseline inference.
    pred_lists: Vec<Vec<u32>>,
    succ_lists: Vec<Vec<u32>>,
    /// Structural-update counter, bumped by every successful
    /// [`GraphTensors::insert_observation_point`]. Embedding caches record
    /// the generation they were built against and refuse to serve a graph
    /// whose counter has moved on.
    generation: u64,
}

/// Equality compares graph *content* only; `generation` is bookkeeping
/// (how many structural updates a particular value has absorbed), so an
/// incrementally extended graph still compares equal to a from-scratch
/// rebuild of the same netlist.
impl PartialEq for GraphTensors {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.pred_coo == other.pred_coo
            && self.succ_coo == other.succ_coo
            && self.pred == other.pred
            && self.succ == other.succ
            && self.pred_t == other.pred_t
            && self.succ_t == other.succ_t
            && self.pred_lists == other.pred_lists
            && self.succ_lists == other.succ_lists
    }
}

impl GraphTensors {
    /// Builds the tensors from a netlist.
    pub fn from_netlist(net: &Netlist) -> Self {
        GraphTensors::with_directions(net, true, true)
    }

    /// Builds the tensors with one aggregation direction optionally
    /// disabled (its matrix left empty) — the ablation of Eq. (1): does the
    /// model need predecessors, successors, or both?
    pub fn with_directions(net: &Netlist, use_pred: bool, use_succ: bool) -> Self {
        let n = net.node_count();
        let mut pred_coo = CooMatrix::with_capacity(n, n, net.edge_count());
        let mut succ_coo = CooMatrix::with_capacity(n, n, net.edge_count());
        let mut pred_lists = vec![Vec::new(); n];
        let mut succ_lists = vec![Vec::new(); n];
        for v in net.nodes() {
            if use_pred {
                for &u in net.fanin(v) {
                    pred_coo.push(v.index(), u.index(), 1.0);
                    if let Some(list) = pred_lists.get_mut(v.index()) {
                        list.push(u.index() as u32);
                    }
                }
            }
            if use_succ {
                for &u in net.fanout(v) {
                    succ_coo.push(v.index(), u.index(), 1.0);
                    if let Some(list) = succ_lists.get_mut(v.index()) {
                        list.push(u.index() as u32);
                    }
                }
            }
        }
        let pred = pred_coo.to_csr();
        let succ = succ_coo.to_csr();
        let pred_t = pred.transpose();
        let succ_t = succ.transpose();
        GraphTensors {
            n,
            pred_coo,
            succ_coo,
            pred,
            succ,
            pred_t,
            succ_t,
            pred_lists,
            succ_lists,
            generation: 0,
        }
    }

    /// Structural-update counter; see the field docs. Starts at 0 and is
    /// bumped by every successful observation-point insertion.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.pred.nnz()
    }

    /// Sparsity of the combined adjacency (the `> 99.95%` the paper
    /// reports).
    pub fn sparsity(&self) -> f64 {
        self.pred_coo.sparsity()
    }

    /// The predecessor matrix `P` in CSR form.
    pub fn pred(&self) -> &CsrMatrix {
        &self.pred
    }

    /// The successor matrix `S` in CSR form.
    pub fn succ(&self) -> &CsrMatrix {
        &self.succ
    }

    /// Predecessor adjacency lists (`pred_lists[v]` = drivers of `v`).
    pub fn pred_lists(&self) -> &[Vec<u32>] {
        &self.pred_lists
    }

    /// Successor adjacency lists (`succ_lists[v]` = sinks of `v`).
    pub fn succ_lists(&self) -> &[Vec<u32>] {
        &self.succ_lists
    }

    /// Computes one aggregation step `G = E + w_pr * P·E + w_su * S·E`.
    ///
    /// Also returns the intermediate products `P·E` and `S·E`, which the
    /// backward pass needs for the `w_pr` / `w_su` gradients
    /// (C-INTERMEDIATE: callers that only want `G` can drop them).
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `e.rows()` equals the node count.
    pub fn aggregate(&self, e: &Matrix, w_pr: f32, w_su: f32) -> Result<(Matrix, Matrix, Matrix)> {
        let pe = self.pred.spmm(e)?;
        let se = self.succ.spmm(e)?;
        let g = e.add_scaled2(w_pr, &pe, w_su, &se)?;
        Ok((g, pe, se))
    }

    /// [`GraphTensors::aggregate`] without the intermediates: computes
    /// `G` alone, row-fused — each output row zeroes two scratch rows,
    /// accumulates its `P·E` / `S·E` rows through the same per-row SpMM
    /// kernel as the full products, and combines them with `E` in the
    /// same `(e + w_pr·pe) + w_su·se` element order. The result is
    /// bit-for-bit the `g` of [`GraphTensors::aggregate`], but the pass
    /// never materialises (or allocates) the `P·E` / `S·E` matrices —
    /// this is the inference path, where the backward pass will never
    /// ask for them.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `e.rows()` equals the node count.
    pub fn aggregate_g(&self, e: &Matrix, w_pr: f32, w_su: f32) -> Result<Matrix> {
        let cols = e.cols();
        // Narrow embeddings spend more on per-row dispatch than on the
        // arithmetic it saves; the whole-matrix SpMM amortises that
        // machinery across rows and the fused combine stays bit-identical
        // (same per-row k-order, same `(e + w_pr·pe) + w_su·se` element
        // order), so below this width take the materialising path.
        if cols < 16 {
            let pe = self.pred.spmm(e)?;
            let se = self.succ.spmm(e)?;
            return e.add_scaled2(w_pr, &pe, w_su, &se);
        }
        let mut pe_row = vec![0.0f32; cols];
        let mut se_row = vec![0.0f32; cols];
        let mut data = Vec::with_capacity(self.n * cols);
        for r in 0..self.n {
            pe_row.fill(0.0);
            se_row.fill(0.0);
            self.pred.spmm_row_into(r, e, &mut pe_row)?;
            self.succ.spmm_row_into(r, e, &mut se_row)?;
            data.extend(
                e.row(r)
                    .iter()
                    .zip(&pe_row)
                    .zip(&se_row)
                    .map(|((&ev, &pv), &sv)| {
                        let t = ev + w_pr * pv;
                        t + w_su * sv
                    }),
            );
        }
        Matrix::from_vec(self.n, cols, data)
    }

    /// Row-sliced variant of [`GraphTensors::aggregate`]: computes only the
    /// listed rows of `G = E + w_pr * P·E + w_su * S·E`, returned as a dense
    /// `rows.len() x e.cols()` matrix.
    ///
    /// Uses the same per-row kernels and the same accumulation order
    /// (`(e + w_pr·pe) + w_su·se` per element) as the full aggregation, so
    /// each returned row is bit-for-bit equal to the corresponding row of
    /// the full `G` — the contract [`crate::incremental`] depends on.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `e.rows()` equals the node count, or an
    /// index error if any requested row is out of range.
    pub fn aggregate_rows(
        &self,
        e: &Matrix,
        rows: &[usize],
        w_pr: f32,
        w_su: f32,
    ) -> Result<Matrix> {
        let pe = self.pred.spmm_rows(e, rows)?;
        let se = self.succ.spmm_rows(e, rows)?;
        e.gather_rows(rows).add_scaled2(w_pr, &pe, w_su, &se)
    }

    /// Expands a dirty-node set by one aggregation hop: the result contains
    /// every input node plus every node that reads one of them through
    /// either the predecessor or the successor matrix (both directions,
    /// because [`GraphTensors::aggregate`] sums over both).
    ///
    /// Input indices must be in bounds and the output is sorted and
    /// deduplicated; the expansion is monotone (`rows ⊆ halo_step(rows)`),
    /// which is what lets the incremental engine recompute a growing halo
    /// per layer and stay exact.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= node_count()`.
    pub fn halo_step(&self, rows: &[usize]) -> Vec<usize> {
        let mut touched = vec![false; self.n];
        for &u in rows {
            touched[u] = true;
            // Readers of u: nodes v with u in PR(v) are the rows of P^T at
            // u; likewise for S. Using the cached transposes keeps this
            // O(degree) even when a direction was built empty.
            for (v, _) in self.pred_t.row(u) {
                if let Some(t) = touched.get_mut(v) {
                    *t = true;
                }
            }
            for (v, _) in self.succ_t.row(u) {
                if let Some(t) = touched.get_mut(v) {
                    *t = true;
                }
            }
        }
        touched
            .iter()
            .enumerate()
            .filter_map(|(v, &t)| t.then_some(v))
            .collect()
    }

    /// Backward of [`GraphTensors::aggregate`] w.r.t. `E`:
    /// `dE = dG + w_pr * Pᵀ·dG + w_su * Sᵀ·dG`.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless `dg.rows()` equals the node count.
    pub fn aggregate_backward(&self, dg: &Matrix, w_pr: f32, w_su: f32) -> Result<Matrix> {
        let pt = self.pred_t.spmm(dg)?;
        let st = self.succ_t.spmm(dg)?;
        let mut de = dg.clone();
        de.axpy(w_pr, &pt)?;
        de.axpy(w_su, &st)?;
        Ok(de)
    }

    /// Incrementally extends the tensors after an observation point `op`
    /// has been inserted at `target` in the netlist.
    ///
    /// Appends the COO tuples for the new node and edge (the paper's
    /// three-tuple update, §4: `(w_pr, p, v)`, `(w_su, v, p)` — the
    /// identity diagonal is implicit here because aggregation adds `E`
    /// directly) and rebuilds the CSR forms.
    ///
    /// # Errors
    ///
    /// Returns [`gcnt_tensor::TensorError::LengthMismatch`] if `op` is not
    /// the next node index after the current node count (i.e. the tensors
    /// are out of sync with the netlist); the tensors are left untouched.
    pub fn insert_observation_point(&mut self, target: NodeId, op: NodeId) -> Result<()> {
        if op.index() != self.n {
            return Err(gcnt_tensor::TensorError::LengthMismatch {
                expected: self.n,
                actual: op.index(),
            });
        }
        self.n += 1;
        self.pred_coo.grow(self.n, self.n);
        self.succ_coo.grow(self.n, self.n);
        self.pred_coo.push(op.index(), target.index(), 1.0);
        self.succ_coo.push(target.index(), op.index(), 1.0);
        self.pred = self.pred_coo.to_csr();
        self.succ = self.succ_coo.to_csr();
        self.pred_t = self.pred.transpose();
        self.succ_t = self.succ.transpose();
        self.pred_lists.push(vec![target.index() as u32]);
        self.succ_lists.push(Vec::new());
        if let Some(list) = self.succ_lists.get_mut(target.index()) {
            list.push(op.index() as u32);
        }
        self.generation += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{CellKind, Netlist};

    fn tiny_net() -> (Netlist, NodeId, NodeId, NodeId) {
        let mut net = Netlist::new("t");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::Not);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        (net, a, g, o)
    }

    #[test]
    fn pred_succ_are_transposes_of_each_other() {
        let (net, ..) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        assert_eq!(t.pred().to_dense(), t.succ().to_dense().transpose());
    }

    #[test]
    fn adjacency_lists_match_netlist() {
        let (net, a, g, o) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        assert_eq!(t.pred_lists()[g.index()], vec![a.index() as u32]);
        assert_eq!(t.succ_lists()[g.index()], vec![o.index() as u32]);
        assert!(t.pred_lists()[a.index()].is_empty());
    }

    #[test]
    fn aggregate_matches_hand_computation() {
        let (net, a, g, o) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        let e = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]).unwrap();
        let (gm, _, _) = t.aggregate(&e, 0.5, 0.25).unwrap();
        // a: e_a + 0.25 * e_g (successor)
        assert_eq!(gm.get(a.index(), 0), 1.0 + 0.25 * 10.0);
        // g: e_g + 0.5 * e_a + 0.25 * e_o
        assert_eq!(gm.get(g.index(), 0), 10.0 + 0.5 * 1.0 + 0.25 * 100.0);
        // o: e_o + 0.5 * e_g
        assert_eq!(gm.get(o.index(), 0), 100.0 + 0.5 * 10.0);
    }

    #[test]
    fn aggregate_backward_is_adjoint() {
        // <aggregate(E), D> == <E, aggregate_backward(D)> for random E, D.
        let (net, ..) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        let e = Matrix::from_fn(3, 2, |r, c| (r as f32 + 1.0) * (c as f32 + 0.5));
        let d = Matrix::from_fn(3, 2, |r, c| (r as f32 - 1.0) * (c as f32 + 1.5));
        let (g, _, _) = t.aggregate(&e, 0.7, 0.3).unwrap();
        let de = t.aggregate_backward(&d, 0.7, 0.3).unwrap();
        let lhs = g.dot(&d).unwrap();
        let rhs = e.dot(&de).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn insert_observation_point_extends_graph() {
        let (mut net, _, g, _) = tiny_net();
        let mut t = GraphTensors::from_netlist(&net);
        let op = net.insert_observation_point(g).unwrap();
        t.insert_observation_point(g, op).unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.pred_lists()[op.index()], vec![g.index() as u32]);
        assert!(t.succ_lists()[g.index()].contains(&(op.index() as u32)));
        // Incremental result equals a from-scratch rebuild.
        let fresh = GraphTensors::from_netlist(&net);
        assert_eq!(t, fresh);
    }

    #[test]
    fn out_of_sync_insert_is_an_error() {
        let (net, _, g, _) = tiny_net();
        let mut t = GraphTensors::from_netlist(&net);
        let before = t.clone();
        // Claim an op id that skips an index.
        let err = t.insert_observation_point(g, NodeId::from_index(10));
        assert!(matches!(
            err,
            Err(gcnt_tensor::TensorError::LengthMismatch {
                expected: 3,
                actual: 10
            })
        ));
        // The tensors are untouched after the rejected insert.
        assert_eq!(t, before);
    }

    #[test]
    fn aggregate_rows_matches_full_aggregate_bitwise() {
        let (net, ..) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        let e = Matrix::from_fn(3, 2, |r, c| (r as f32 + 0.3) * (c as f32 - 1.7));
        let (full, _, _) = t.aggregate(&e, 0.62, 0.31).unwrap();
        let sliced = t.aggregate_rows(&e, &[2, 0], 0.62, 0.31).unwrap();
        assert_eq!(sliced.row(0), full.row(2));
        assert_eq!(sliced.row(1), full.row(0));
    }

    #[test]
    fn halo_step_expands_both_directions() {
        let (net, a, g, o) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        // g is read by a (successor matrix) and o (predecessor matrix).
        assert_eq!(
            t.halo_step(&[g.index()]),
            vec![a.index(), g.index(), o.index()]
        );
        // a is read by g only.
        assert_eq!(t.halo_step(&[a.index()]), vec![a.index(), g.index()]);
        assert!(t.halo_step(&[]).is_empty());
    }

    #[test]
    fn generation_counts_structural_updates_but_not_equality() {
        let (mut net, _, g, _) = tiny_net();
        let mut t = GraphTensors::from_netlist(&net);
        assert_eq!(t.generation(), 0);
        let op = net.insert_observation_point(g).unwrap();
        t.insert_observation_point(g, op).unwrap();
        assert_eq!(t.generation(), 1);
        // A failed insert must not bump the counter.
        assert!(t
            .insert_observation_point(g, NodeId::from_index(99))
            .is_err());
        assert_eq!(t.generation(), 1);
        // Content equality ignores the counter: a rebuild is generation 0.
        let fresh = GraphTensors::from_netlist(&net);
        assert_eq!(fresh.generation(), 0);
        assert_eq!(t, fresh);
    }

    #[test]
    fn directions_can_be_disabled() {
        let (net, a, g, o) = tiny_net();
        let pred_only = GraphTensors::with_directions(&net, true, false);
        assert_eq!(pred_only.succ().nnz(), 0);
        assert_eq!(pred_only.pred().nnz(), 2);
        assert!(pred_only.succ_lists()[g.index()].is_empty());
        let succ_only = GraphTensors::with_directions(&net, false, true);
        assert_eq!(succ_only.pred().nnz(), 0);
        assert!(succ_only.succ_lists()[a.index()].contains(&(g.index() as u32)));
        // Aggregation with a disabled direction ignores that direction.
        let e = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]).unwrap();
        let (gm, _, _) = pred_only.aggregate(&e, 1.0, 1.0).unwrap();
        assert_eq!(gm.get(a.index(), 0), 1.0); // no successor term
        assert_eq!(gm.get(o.index(), 0), 110.0); // predecessor g still counted
    }

    #[test]
    fn sparsity_reported() {
        let (net, ..) = tiny_net();
        let t = GraphTensors::from_netlist(&net);
        assert!((t.sparsity() - (1.0 - 2.0 / 9.0)).abs() < 1e-12);
    }
}
