//! Classification metrics.
//!
//! The paper reports accuracy on balanced sets (Table 2) and F1-score on
//! the full imbalanced designs (Fig. 9), "since accuracy would be
//! misleading" under a ~0.6% positive rate (§5).

use serde::{Deserialize, Serialize};

/// Binary confusion counts with derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against labels (both `1` = positive).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(labels: &[usize], predictions: &[usize]) -> Self {
        assert_eq!(labels.len(), predictions.len(), "one prediction per label");
        let mut c = Confusion::default();
        for (&l, &p) in labels.iter().zip(predictions) {
            match (l == 1, p == 1) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// `tp / (tp + fp)`; 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// `tp / (tp + fn)`; 0 when there are no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Merges counts from another confusion matrix (e.g. combining the
    /// per-stage predictions of the multi-stage GCN, §5).
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let c = Confusion::from_predictions(&[1, 0], &[0, 1]);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn known_counts() {
        // labels:      1 1 1 0 0 0 0 0
        // predictions: 1 1 0 1 0 0 0 0
        let c = Confusion::from_predictions(&[1, 1, 1, 0, 0, 0, 0, 0], &[1, 1, 0, 1, 0, 0, 0, 0]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 4);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        // No positive predictions at all.
        let c = Confusion::from_predictions(&[1, 1], &[0, 0]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn accuracy_misleading_on_imbalanced_data() {
        // The paper's motivation for F1: predicting all-negative on a
        // 1%-positive set gives 99% accuracy but 0 F1.
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i == 0)).collect();
        let preds = vec![0usize; 100];
        let c = Confusion::from_predictions(&labels, &preds);
        assert!(c.accuracy() > 0.98);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion::from_predictions(&[1, 0], &[1, 0]);
        let b = Confusion::from_predictions(&[1, 1], &[0, 1]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.tp, 2);
        assert_eq!(a.fn_, 1);
    }

    #[test]
    #[should_panic(expected = "one prediction per label")]
    fn length_mismatch_panics() {
        Confusion::from_predictions(&[1], &[1, 0]);
    }
}
