use serde::{Deserialize, Serialize};

use gcnt_nn::{Linear, LinearGrads, Mlp, MlpCache, MlpGrads, Rng};
use gcnt_tensor::{ops, Budget, Matrix, Result};

use crate::backend::MatrixBackend;
use crate::GraphTensors;

/// Hyper-parameters of the GCN (§5 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Input attribute dimension (`K_0 = 4` for `[LL, C0, C1, O]`).
    pub input_dim: usize,
    /// Embedding dimension after each aggregate+encode round; the length is
    /// the search depth `D`. Paper: `K_1, K_2, K_3 = 32, 64, 128`.
    pub embed_dims: Vec<usize>,
    /// Hidden dimensions of the FC classifier head. Paper: `64, 64, 128`.
    pub fc_dims: Vec<usize>,
    /// Number of output classes (2: easy / difficult to observe).
    pub classes: usize,
    /// Initial value of the predecessor aggregation weight `w_pr`.
    pub w_pr_init: f32,
    /// Initial value of the successor aggregation weight `w_su`.
    pub w_su_init: f32,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            input_dim: 4,
            embed_dims: vec![32, 64, 128],
            fc_dims: vec![64, 64, 128],
            classes: 2,
            w_pr_init: 0.5,
            w_su_init: 0.5,
        }
    }
}

impl GcnConfig {
    /// The paper's configuration at a given search depth `D` (1, 2 or 3):
    /// the first `D` of the dims `32, 64, 128` are used (Fig. 8 sweeps
    /// exactly this).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= depth <= 3`.
    pub fn with_depth(depth: usize) -> Self {
        assert!((1..=3).contains(&depth), "paper sweeps D in 1..=3");
        GcnConfig {
            embed_dims: vec![32, 64, 128][..depth].to_vec(),
            ..GcnConfig::default()
        }
    }

    /// Search depth `D`.
    pub fn depth(&self) -> usize {
        self.embed_dims.len()
    }
}

/// The graph convolutional network: `D` aggregate+encode rounds followed by
/// a fully-connected classifier (Fig. 1, Alg. 1).
///
/// All parameters — the aggregation scalars `w_pr`/`w_su`, the encoder
/// matrices `W_1..W_D` and the FC head — are trained end-to-end (§3.2).
///
/// # Examples
///
/// ```
/// use gcnt_core::{Gcn, GcnConfig, GraphData};
/// use gcnt_netlist::{generate, GeneratorConfig};
/// use gcnt_nn::seeded_rng;
///
/// let net = generate(&GeneratorConfig::sized("x", 9, 400));
/// let data = GraphData::from_netlist(&net, None)?;
/// let gcn = Gcn::new(&GcnConfig::with_depth(2), &mut seeded_rng(1));
/// let probs = gcn.predict_proba(&data.tensors, &data.features)?;
/// assert_eq!(probs.len(), net.node_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gcn {
    /// `[w_pr, w_su]`, stored as a slice so optimisers can treat it like
    /// any other flat parameter.
    agg_weights: [f32; 2],
    encoders: Vec<Linear>,
    head: Mlp,
}

/// Activations cached by [`Gcn::forward`] for the backward pass.
///
/// The intermediate embeddings themselves are not retained — the backward
/// pass only needs the aggregated matrices and pre-activations.
#[derive(Debug, Clone)]
pub struct GcnCache {
    /// `P·E_{d-1}` per round.
    pe: Vec<Matrix>,
    /// `S·E_{d-1}` per round.
    se: Vec<Matrix>,
    /// Aggregated `G_d` per round (encoder inputs).
    g: Vec<Matrix>,
    /// Encoder pre-activations `G_d W_d + b` per round.
    z: Vec<Matrix>,
    head: MlpCache,
}

/// Gradients of every [`Gcn`] parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnGrads {
    /// `[dw_pr, dw_su]`.
    pub agg_weights: [f32; 2],
    /// Per-encoder gradients.
    pub encoders: Vec<LinearGrads>,
    /// Classifier head gradients.
    pub head: MlpGrads,
}

impl Gcn {
    /// Creates a GCN with Xavier-initialised weights.
    pub fn new(cfg: &GcnConfig, rng: &mut Rng) -> Self {
        let mut encoders = Vec::with_capacity(cfg.embed_dims.len());
        let mut prev = cfg.input_dim;
        for &dim in &cfg.embed_dims {
            encoders.push(Linear::new(prev, dim, rng));
            prev = dim;
        }
        let mut head_dims = vec![prev];
        head_dims.extend_from_slice(&cfg.fc_dims);
        head_dims.push(cfg.classes);
        Gcn {
            agg_weights: [cfg.w_pr_init, cfg.w_su_init],
            encoders,
            head: Mlp::new(&head_dims, rng),
        }
    }

    /// The predecessor aggregation weight `w_pr`.
    pub fn w_pr(&self) -> f32 {
        self.agg_weights[0]
    }

    /// The successor aggregation weight `w_su`.
    pub fn w_su(&self) -> f32 {
        self.agg_weights[1]
    }

    /// Search depth `D`.
    pub fn depth(&self) -> usize {
        self.encoders.len()
    }

    /// The encoder layers `W_1..W_D`.
    pub fn encoders(&self) -> &[Linear] {
        &self.encoders
    }

    /// The FC classifier head.
    pub fn head(&self) -> &Mlp {
        &self.head
    }

    /// Forward pass keeping all caches needed by [`Gcn::backward`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape.
    pub fn forward(&self, t: &GraphTensors, x: &Matrix) -> Result<(Matrix, GcnCache)> {
        let d = self.depth();
        let mut pe = Vec::with_capacity(d);
        let mut se = Vec::with_capacity(d);
        let mut g = Vec::with_capacity(d);
        let mut z = Vec::with_capacity(d);
        let mut e = x.clone();
        for enc in &self.encoders {
            let (gd, ped, sed) = t.aggregate(&e, self.w_pr(), self.w_su())?;
            let zd = enc.forward(&gd)?;
            e = ops::relu(&zd);
            pe.push(ped);
            se.push(sed);
            g.push(gd);
            z.push(zd);
        }
        let (logits, head_cache) = self.head.forward(&e)?;
        Ok((
            logits,
            GcnCache {
                pe,
                se,
                g,
                z,
                head: head_cache,
            },
        ))
    }

    /// Memory-lean forward pass for inference only (this is the §3.4.1
    /// matrix-form inference that scales to millions of nodes).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape.
    pub fn predict(&self, t: &GraphTensors, x: &Matrix) -> Result<Matrix> {
        self.head.predict(&self.embed(t, x)?)
    }

    /// Computes the final node embeddings `E_D` without classifying.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape.
    pub fn embed(&self, t: &GraphTensors, x: &Matrix) -> Result<Matrix> {
        self.embed_budgeted(t, x, &Budget::unlimited())
    }

    /// [`Gcn::embed`] under a cooperative work [`Budget`]: each layer
    /// charges one unit per node *before* computing, so an exhausted or
    /// cancelled budget stops the pass at a layer boundary instead of
    /// running to completion.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape,
    /// or a budget error ([`gcnt_tensor::TensorError::BudgetExceeded`] /
    /// [`gcnt_tensor::TensorError::Cancelled`]) from the checkpoint
    /// between layers.
    pub fn embed_budgeted(&self, t: &GraphTensors, x: &Matrix, budget: &Budget) -> Result<Matrix> {
        self.embed_budgeted_with(t, x, budget, &mut MatrixBackend::serial())
    }

    /// [`Gcn::embed`] through an explicit [`MatrixBackend`]: the serial
    /// backend reproduces [`Gcn::embed`] exactly, and the partitioned
    /// backend produces bit-identical embeddings via partition-parallel
    /// SpMM (see [`crate::backend`]).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape,
    /// or [`gcnt_tensor::TensorError::StaleCache`] from a partitioned
    /// backend built against an older graph generation.
    pub fn embed_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        backend: &mut MatrixBackend,
    ) -> Result<Matrix> {
        self.embed_budgeted_with(t, x, &Budget::unlimited(), backend)
    }

    /// [`Gcn::embed_budgeted`] through an explicit [`MatrixBackend`].
    /// Budget charging is backend-independent: each layer charges one
    /// unit per node *before* aggregating, exactly as the serial path.
    ///
    /// # Errors
    ///
    /// Shape, budget and backend-staleness errors as in
    /// [`Gcn::embed_budgeted`] and [`Gcn::embed_with`].
    pub fn embed_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Matrix> {
        // No input clone and in-place ReLU: element-wise identical to
        // the cached forward pass, without its per-layer allocations.
        let mut e: Option<Matrix> = None;
        for enc in &self.encoders {
            let cur = e.as_ref().unwrap_or(x);
            budget.charge(cur.rows() as u64)?;
            let g = backend.aggregate(t, cur, self.w_pr(), self.w_su())?;
            let mut z = enc.forward(&g)?;
            ops::relu_in_place(&mut z);
            e = Some(z);
        }
        Ok(e.unwrap_or_else(|| x.clone()))
    }

    /// Probability of the positive class (class 1) for every node.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape.
    pub fn predict_proba(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>> {
        self.predict_proba_budgeted(t, x, &Budget::unlimited())
    }

    /// [`Gcn::predict_proba`] under a cooperative work [`Budget`]; see
    /// [`Gcn::embed_budgeted`] for the checkpoint semantics.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the graph/node shape,
    /// or a budget error from the inter-layer checkpoints.
    pub fn predict_proba_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
    ) -> Result<Vec<f32>> {
        let logits = self.head.predict(&self.embed_budgeted(t, x, budget)?)?;
        // Same max/exp/sum order as `softmax_rows`, minus the full matrix.
        Ok(ops::softmax_col(&logits, 1))
    }

    /// [`Gcn::predict_proba_budgeted`] through an explicit
    /// [`MatrixBackend`]; bit-identical across backends.
    ///
    /// # Errors
    ///
    /// Shape, budget and backend-staleness errors as in
    /// [`Gcn::embed_budgeted_with`].
    pub fn predict_proba_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &Budget,
        backend: &mut MatrixBackend,
    ) -> Result<Vec<f32>> {
        let logits = self
            .head
            .predict(&self.embed_budgeted_with(t, x, budget, backend)?)?;
        Ok(ops::softmax_col(&logits, 1))
    }

    /// Backward pass through the head, the encoders and the aggregations,
    /// including the scalar gradients for `w_pr` / `w_su`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `dlogits` does not match the cache.
    pub fn backward(
        &self,
        t: &GraphTensors,
        cache: &GcnCache,
        dlogits: &Matrix,
    ) -> Result<GcnGrads> {
        let (head_grads, mut de) = self.head.backward(&cache.head, dlogits)?;
        let mut enc_grads: Vec<Option<LinearGrads>> = vec![None; self.encoders.len()];
        let mut dw_pr = 0.0f32;
        let mut dw_su = 0.0f32;
        for i in (0..self.encoders.len()).rev() {
            let dz = de.hadamard(&ops::relu_mask(&cache.z[i]))?;
            let (grads, dg) = self.encoders[i].backward(&cache.g[i], &dz)?;
            enc_grads[i] = Some(grads);
            dw_pr += dg.dot(&cache.pe[i])?;
            dw_su += dg.dot(&cache.se[i])?;
            de = t.aggregate_backward(&dg, self.w_pr(), self.w_su())?;
        }
        Ok(GcnGrads {
            agg_weights: [dw_pr, dw_su],
            encoders: enc_grads.into_iter().map(|g| g.expect("filled")).collect(),
            head: head_grads,
        })
    }

    /// Zero gradients matching this model's shape.
    pub fn zero_grads(&self) -> GcnGrads {
        GcnGrads {
            agg_weights: [0.0, 0.0],
            encoders: self.encoders.iter().map(Linear::zero_grads).collect(),
            head: self.head.zero_grads(),
        }
    }

    /// Applies a plain SGD update to every parameter.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the model shape.
    pub fn apply_sgd(&mut self, grads: &GcnGrads, lr: f32) {
        self.agg_weights[0] -= lr * grads.agg_weights[0];
        self.agg_weights[1] -= lr * grads.agg_weights[1];
        assert_eq!(grads.encoders.len(), self.encoders.len(), "gradient shape");
        for (enc, g) in self.encoders.iter_mut().zip(&grads.encoders) {
            enc.apply_sgd(g, lr);
        }
        self.head.apply_sgd(&grads.head, lr);
    }

    /// Mutable flat views of every parameter:
    /// `[agg_weights, encoders..., head...]`.
    pub fn params_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out: Vec<&mut [f32]> = vec![&mut self.agg_weights];
        for enc in &mut self.encoders {
            out.extend(enc.params_mut());
        }
        out.extend(self.head.params_mut());
        out
    }

    /// Flat parameter slice lengths in [`Gcn::params_mut`] order, without
    /// borrowing mutably — the shape a checkpoint loader validates saved
    /// optimiser state against.
    pub fn param_lens(&self) -> Vec<usize> {
        let mut out = vec![2usize];
        for enc in &self.encoders {
            out.push(enc.weight().as_slice().len());
            out.push(enc.bias().len());
        }
        for layer in self.head.layers() {
            out.push(layer.weight().as_slice().len());
            out.push(layer.bias().len());
        }
        out
    }
}

impl GcnGrads {
    /// Accumulates another gradient set (for multi-graph training).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &GcnGrads) {
        self.agg_weights[0] += other.agg_weights[0];
        self.agg_weights[1] += other.agg_weights[1];
        assert_eq!(self.encoders.len(), other.encoders.len(), "gradient shape");
        for (a, b) in self.encoders.iter_mut().zip(&other.encoders) {
            a.accumulate(b);
        }
        self.head.accumulate(&other.head);
    }

    /// Scales every gradient in place.
    pub fn scale(&mut self, alpha: f32) {
        self.agg_weights[0] *= alpha;
        self.agg_weights[1] *= alpha;
        for g in &mut self.encoders {
            g.scale(alpha);
        }
        self.head.scale(alpha);
    }

    /// Flat views matching [`Gcn::params_mut`] order.
    pub fn params(&self) -> Vec<&[f32]> {
        let mut out: Vec<&[f32]> = vec![&self.agg_weights];
        for g in &self.encoders {
            out.extend(g.params());
        }
        out.extend(self.head.params());
        out
    }

    /// Global L2 norm over every gradient value — the quantity a
    /// divergence guard compares against an exploding-gradient limit.
    pub fn l2_norm(&self) -> f32 {
        let sum: f64 = self
            .params()
            .iter()
            .flat_map(|s| s.iter())
            .map(|&g| f64::from(g) * f64::from(g))
            .sum();
        sum.sqrt() as f32
    }

    /// Whether every gradient value is finite.
    pub fn is_finite(&self) -> bool {
        self.params()
            .iter()
            .flat_map(|s| s.iter())
            .all(|g| g.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{CellKind, Netlist};
    use gcnt_nn::loss::weighted_softmax_cross_entropy;
    use gcnt_nn::seeded_rng;

    fn chain_graph(len: usize) -> GraphTensors {
        let mut net = Netlist::new("chain");
        let mut prev = net.add_cell(CellKind::Input);
        for _ in 0..len - 2 {
            let g = net.add_cell(CellKind::Buf);
            net.connect(prev, g).unwrap();
            prev = g;
        }
        let o = net.add_cell(CellKind::Output);
        net.connect(prev, o).unwrap();
        GraphTensors::from_netlist(&net)
    }

    fn tiny_cfg() -> GcnConfig {
        GcnConfig {
            input_dim: 3,
            embed_dims: vec![4, 5],
            fc_dims: vec![4],
            classes: 2,
            w_pr_init: 0.4,
            w_su_init: 0.6,
        }
    }

    #[test]
    fn shapes_flow_through() {
        let t = chain_graph(6);
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(0));
        let x = Matrix::from_fn(6, 3, |r, c| (r + c) as f32 * 0.1);
        let (logits, cache) = gcn.forward(&t, &x).unwrap();
        assert_eq!(logits.shape(), (6, 2));
        assert_eq!(cache.z.len(), 2);
        assert_eq!(cache.g.len(), 2);
    }

    #[test]
    fn predict_matches_forward() {
        let t = chain_graph(5);
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(1));
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.2).cos());
        let (l1, _) = gcn.forward(&t, &x).unwrap();
        let l2 = gcn.predict(&t, &x).unwrap();
        for (a, b) in l1.as_slice().iter().zip(l2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn with_depth_matches_paper_dims() {
        let cfg = GcnConfig::with_depth(3);
        assert_eq!(cfg.embed_dims, vec![32, 64, 128]);
        assert_eq!(cfg.fc_dims, vec![64, 64, 128]);
        let gcn = Gcn::new(&cfg, &mut seeded_rng(0));
        assert_eq!(gcn.depth(), 3);
        assert_eq!(gcn.head().depth(), 4); // 4 FC layers
        assert_eq!(gcn.head().fan_out(), 2);
    }

    #[test]
    #[should_panic(expected = "D in 1..=3")]
    fn with_depth_out_of_range_panics() {
        GcnConfig::with_depth(4);
    }

    /// Finite-difference check of the aggregation-weight gradients — the
    /// trickiest part of the backward pass.
    #[test]
    fn gradient_check_agg_weights() {
        let t = chain_graph(6);
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(2));
        let x = Matrix::from_fn(6, 3, |r, c| ((r * 7 + c * 3) as f32 * 0.13).sin());
        let labels = [0usize, 1, 0, 1, 0, 1];
        let weights = [1.0f32, 1.0];

        let (logits, cache) = gcn.forward(&t, &x).unwrap();
        let (_, dlogits) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
        let grads = gcn.backward(&t, &cache, &dlogits).unwrap();

        let loss_of = |g: &Gcn| {
            let logits = g.predict(&t, &x).unwrap();
            weighted_softmax_cross_entropy(&logits, &labels, &weights).0
        };
        let eps = 1e-3f32;
        for (idx, name) in [(0usize, "w_pr"), (1, "w_su")] {
            let mut gp = gcn.clone();
            gp.agg_weights[idx] += eps;
            let mut gm = gcn.clone();
            gm.agg_weights[idx] -= eps;
            let numeric = (loss_of(&gp) - loss_of(&gm)) / (2.0 * eps);
            let analytic = grads.agg_weights[idx];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "{name}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Finite-difference check of encoder weight gradients.
    #[test]
    fn gradient_check_encoder_weights() {
        let t = chain_graph(5);
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(3));
        let x = Matrix::from_fn(5, 3, |r, c| ((r + 2 * c) as f32 * 0.21).sin());
        let labels = [1usize, 0, 1, 0, 1];
        let weights = [1.0f32, 2.0];

        let (logits, cache) = gcn.forward(&t, &x).unwrap();
        let (_, dlogits) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
        let grads = gcn.backward(&t, &cache, &dlogits).unwrap();

        let loss_of = |g: &Gcn| {
            let logits = g.predict(&t, &x).unwrap();
            weighted_softmax_cross_entropy(&logits, &labels, &weights).0
        };
        let eps = 1e-3f32;
        for enc_idx in 0..2 {
            let cols = gcn.encoders[enc_idx].weight().cols();
            for &(r, c) in &[(0usize, 0usize), (1, 2)] {
                let mut gp = gcn.clone();
                {
                    let mut ps = gp.encoders[enc_idx].params_mut();
                    ps[0][r * cols + c] += eps;
                }
                let mut gm = gcn.clone();
                {
                    let mut ps = gm.encoders[enc_idx].params_mut();
                    ps[0][r * cols + c] -= eps;
                }
                let numeric = (loss_of(&gp) - loss_of(&gm)) / (2.0 * eps);
                let analytic = grads.encoders[enc_idx].weight.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "enc {enc_idx} W[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let t = chain_graph(8);
        let mut gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(4));
        let x = Matrix::from_fn(8, 3, |r, c| ((r * 5 + c) as f32 * 0.3).sin());
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let weights = [1.0f32, 1.0];
        let initial = {
            let logits = gcn.predict(&t, &x).unwrap();
            weighted_softmax_cross_entropy(&logits, &labels, &weights).0
        };
        for _ in 0..100 {
            let (logits, cache) = gcn.forward(&t, &x).unwrap();
            let (_, dlogits) = weighted_softmax_cross_entropy(&logits, &labels, &weights);
            let grads = gcn.backward(&t, &cache, &dlogits).unwrap();
            gcn.apply_sgd(&grads, 0.3);
        }
        let final_loss = {
            let logits = gcn.predict(&t, &x).unwrap();
            weighted_softmax_cross_entropy(&logits, &labels, &weights).0
        };
        assert!(final_loss < initial, "loss {initial} -> {final_loss}");
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let t = chain_graph(4);
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(5));
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1);
        let labels = [0usize, 1, 0, 1];
        let (logits, cache) = gcn.forward(&t, &x).unwrap();
        let (_, d) = weighted_softmax_cross_entropy(&logits, &labels, &[1.0, 1.0]);
        let g = gcn.backward(&t, &cache, &d).unwrap();
        let mut sum = gcn.zero_grads();
        sum.accumulate(&g);
        sum.accumulate(&g);
        sum.scale(0.5);
        assert!((sum.agg_weights[0] - g.agg_weights[0]).abs() < 1e-6);
        assert!((sum.agg_weights[1] - g.agg_weights[1]).abs() < 1e-6);
    }

    #[test]
    fn params_and_grads_align() {
        let mut gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(6));
        let grads = gcn.zero_grads();
        let p = gcn.params_mut();
        let g = grads.params();
        assert_eq!(p.len(), g.len());
        for (a, b) in p.iter().zip(g.iter()) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn serde_round_trip() {
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(7));
        let json = serde_json::to_string(&gcn).unwrap();
        let back: Gcn = serde_json::from_str(&json).unwrap();
        assert_eq!(gcn, back);
    }

    #[test]
    fn param_lens_match_params_mut() {
        let mut gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(8));
        let lens = gcn.param_lens();
        let mut_lens: Vec<usize> = gcn.params_mut().iter().map(|s| s.len()).collect();
        assert_eq!(lens, mut_lens);
    }

    #[test]
    fn grad_norm_and_finiteness() {
        let gcn = Gcn::new(&tiny_cfg(), &mut seeded_rng(9));
        let mut grads = gcn.zero_grads();
        assert_eq!(grads.l2_norm(), 0.0);
        assert!(grads.is_finite());
        grads.agg_weights = [3.0, 4.0];
        assert!((grads.l2_norm() - 5.0).abs() < 1e-6);
        grads.head.layers[0].bias[0] = f32::NAN;
        assert!(!grads.is_finite());
    }
}
