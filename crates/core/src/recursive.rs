//! Recursion-based inference — the *baseline* the paper's matrix-form
//! scheme is benchmarked against (Fig. 10).
//!
//! This is Algorithm 1 executed literally, per node: to classify node `v`,
//! its depth-`D` embedding is computed by recursively expanding the
//! neighbourhood, exactly like the released GraphSAGE implementation the
//! paper compares to (\[12\]). Representations are memoised only *within*
//! one node's expansion, so overlapping neighbourhoods of different nodes
//! are recomputed from scratch — the duplicated work that makes this
//! approach three orders of magnitude slower at 10^6 nodes (§3.4.1).
//!
//! Keep this for benchmarking and cross-validation; use
//! [`crate::Gcn::predict`] for anything real.

use std::collections::HashMap;

use gcnt_tensor::{Matrix, Result};

use crate::{Gcn, GraphTensors};

/// Computes the depth-`D` embedding of a single node by recursive
/// neighbourhood expansion.
///
/// # Errors
///
/// Returns a shape error if `x` does not match the model input dimension.
pub fn embed_node(gcn: &Gcn, t: &GraphTensors, x: &Matrix, node: usize) -> Result<Vec<f32>> {
    let mut memo: HashMap<(u32, u8), Vec<f32>> = HashMap::new();
    representation(gcn, t, x, node as u32, gcn.depth() as u8, &mut memo)
}

/// Classifies the listed nodes with recursion-based inference; returns
/// their logits in input order.
///
/// # Errors
///
/// Returns a shape error if `x` does not match the model input dimension.
pub fn predict_nodes(gcn: &Gcn, t: &GraphTensors, x: &Matrix, nodes: &[usize]) -> Result<Matrix> {
    let k = gcn.encoders().last().map_or(x.cols(), |enc| enc.fan_out());
    let mut embeddings = Matrix::zeros(nodes.len(), k);
    for (i, &node) in nodes.iter().enumerate() {
        let e = embed_node(gcn, t, x, node)?;
        embeddings.row_mut(i).copy_from_slice(&e);
    }
    gcn.head().predict(&embeddings)
}

/// Classifies every node recursively (the full Fig. 10 baseline).
///
/// # Errors
///
/// Returns a shape error if `x` does not match the model input dimension.
pub fn predict_all(gcn: &Gcn, t: &GraphTensors, x: &Matrix) -> Result<Matrix> {
    let nodes: Vec<usize> = (0..t.node_count()).collect();
    predict_nodes(gcn, t, x, &nodes)
}

/// Classifies the listed nodes with *unmemoised* recursion: the literal
/// per-node neighbourhood-tree expansion of the released GraphSAGE
/// implementation, which recomputes a representation for every *path* to a
/// neighbour rather than every distinct neighbour. This is the Fig. 10
/// baseline; [`predict_nodes`] is the charitable variant that at least
/// memoises within one node's expansion.
///
/// # Errors
///
/// Returns a shape error if `x` does not match the model input dimension.
pub fn predict_nodes_unmemoized(
    gcn: &Gcn,
    t: &GraphTensors,
    x: &Matrix,
    nodes: &[usize],
) -> Result<Matrix> {
    let k = gcn.encoders().last().map_or(x.cols(), |enc| enc.fan_out());
    let mut embeddings = Matrix::zeros(nodes.len(), k);
    for (i, &node) in nodes.iter().enumerate() {
        let e = representation_tree(gcn, t, x, node as u32, gcn.depth() as u8)?;
        embeddings.row_mut(i).copy_from_slice(&e);
    }
    gcn.head().predict(&embeddings)
}

fn representation_tree(
    gcn: &Gcn,
    t: &GraphTensors,
    x: &Matrix,
    node: u32,
    depth: u8,
) -> Result<Vec<f32>> {
    if depth == 0 {
        return Ok(x.row(node as usize).to_vec());
    }
    let mut g = representation_tree(gcn, t, x, node, depth - 1)?;
    for &u in &t.pred_lists()[node as usize] {
        let r = representation_tree(gcn, t, x, u, depth - 1)?;
        for (gi, ri) in g.iter_mut().zip(&r) {
            *gi += gcn.w_pr() * ri;
        }
    }
    for &u in &t.succ_lists()[node as usize] {
        let r = representation_tree(gcn, t, x, u, depth - 1)?;
        for (gi, ri) in g.iter_mut().zip(&r) {
            *gi += gcn.w_su() * ri;
        }
    }
    let enc = &gcn.encoders()[depth as usize - 1];
    let g_mat = Matrix::from_vec(1, g.len(), g)?;
    let z = enc.forward(&g_mat)?;
    Ok(z.row(0).iter().map(|&v| v.max(0.0)).collect())
}

fn representation(
    gcn: &Gcn,
    t: &GraphTensors,
    x: &Matrix,
    node: u32,
    depth: u8,
    memo: &mut HashMap<(u32, u8), Vec<f32>>,
) -> Result<Vec<f32>> {
    if depth == 0 {
        return Ok(x.row(node as usize).to_vec());
    }
    if let Some(cached) = memo.get(&(node, depth)) {
        return Ok(cached.clone());
    }
    // Aggregation: g = e_v + w_pr * sum(pred) + w_su * sum(succ).
    let mut g = representation(gcn, t, x, node, depth - 1, memo)?;
    for &u in &t.pred_lists()[node as usize] {
        let r = representation(gcn, t, x, u, depth - 1, memo)?;
        for (gi, ri) in g.iter_mut().zip(&r) {
            *gi += gcn.w_pr() * ri;
        }
    }
    for &u in &t.succ_lists()[node as usize] {
        let r = representation(gcn, t, x, u, depth - 1, memo)?;
        for (gi, ri) in g.iter_mut().zip(&r) {
            *gi += gcn.w_su() * ri;
        }
    }
    // Encoding: e = ReLU(g W_d + b).
    let enc = &gcn.encoders()[depth as usize - 1];
    let g_mat = Matrix::from_vec(1, g.len(), g)?;
    let z = enc.forward(&g_mat)?;
    let e: Vec<f32> = z.row(0).iter().map(|&v| v.max(0.0)).collect();
    memo.insert((node, depth), e.clone());
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcnConfig, GraphData};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;

    fn setup(depth: usize) -> (Gcn, GraphData) {
        let net = generate(&GeneratorConfig::sized("r", 61, 300));
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![6, 7, 8][..depth].to_vec(),
                fc_dims: vec![5],
                ..GcnConfig::default()
            },
            &mut seeded_rng(9),
        );
        (gcn, data)
    }

    /// The headline correctness property: recursion-based inference and
    /// matrix-form inference are the *same function*.
    #[test]
    fn recursive_matches_matrix_form() {
        for depth in 1..=3 {
            let (gcn, data) = setup(depth);
            let fast = gcn.predict(&data.tensors, &data.features).unwrap();
            let nodes: Vec<usize> = (0..data.node_count()).step_by(17).collect();
            let slow = predict_nodes(&gcn, &data.tensors, &data.features, &nodes).unwrap();
            for (i, &node) in nodes.iter().enumerate() {
                for c in 0..2 {
                    let a = fast.get(node, c);
                    let b = slow.get(i, c);
                    assert!(
                        (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                        "depth {depth} node {node} class {c}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn embed_node_matches_matrix_embedding() {
        let (gcn, data) = setup(2);
        let full = gcn.embed(&data.tensors, &data.features).unwrap();
        for node in [0usize, 5, 50] {
            let e = embed_node(&gcn, &data.tensors, &data.features, node).unwrap();
            for (j, &v) in e.iter().enumerate() {
                let a = full.get(node, j);
                assert!(
                    (a - v).abs() < 1e-3 * (1.0 + a.abs()),
                    "node {node} dim {j}"
                );
            }
        }
    }

    /// Unmemoised and memoised recursion are the same mathematical
    /// function (the memo only removes duplicated work).
    #[test]
    fn unmemoized_matches_memoized() {
        let (gcn, data) = setup(3);
        let nodes: Vec<usize> = (0..data.node_count()).step_by(23).collect();
        let a = predict_nodes(&gcn, &data.tensors, &data.features, &nodes).unwrap();
        let b = predict_nodes_unmemoized(&gcn, &data.tensors, &data.features, &nodes).unwrap();
        for i in 0..nodes.len() {
            for c in 0..2 {
                let x = a.get(i, c);
                let y = b.get(i, c);
                assert!(
                    (x - y).abs() < 1e-3 * (1.0 + x.abs()),
                    "node {i} class {c}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn predict_all_covers_every_node() {
        let (gcn, data) = setup(1);
        let logits = predict_all(&gcn, &data.tensors, &data.features).unwrap();
        assert_eq!(logits.rows(), data.node_count());
    }
}
