//! Multi-stage GCN classification (§3.3 of the paper).
//!
//! Industrial designs are ~99.4% easy-to-observe, so a single classifier
//! collapses to the majority class. The paper's fix is a cascade: "In each
//! stage, a GCN is trained and only filters out negative cases with high
//! confidence, and passes the remaining nodes to the next stage ... This is
//! achieved by imposing a large weight on the positive nodes" (Fig. 4).
//! After a few stages the surviving set is roughly balanced and the last
//! stage makes the final call.

use serde::{Deserialize, Serialize};

use gcnt_tensor::{Matrix, Result};

use crate::train::{train, TrainConfig};
use crate::{Gcn, GcnConfig, GraphData, GraphTensors};

/// Configuration of the multi-stage cascade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStageConfig {
    /// Number of stages (the paper uses 3).
    pub stages: usize,
    /// Architecture of each stage's GCN.
    pub gcn: GcnConfig,
    /// Epochs per stage.
    pub epochs_per_stage: usize,
    /// Learning rate.
    pub lr: f32,
    /// A node survives a stage if its predicted positive probability is at
    /// least this threshold; anything below is filtered out as a
    /// high-confidence negative.
    pub filter_threshold: f32,
    /// Cap on the automatic positive class weight (`#neg / #pos` of the
    /// stage's active set, clamped to this value).
    pub max_pos_weight: f32,
    /// Seed for per-stage weight initialisation.
    pub seed: u64,
}

impl Default for MultiStageConfig {
    fn default() -> Self {
        MultiStageConfig {
            stages: 3,
            gcn: GcnConfig::default(),
            epochs_per_stage: 100,
            lr: 0.05,
            filter_threshold: 0.25,
            max_pos_weight: 32.0,
            seed: 0,
        }
    }
}

/// What happened at one stage of training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage number (0-based).
    pub stage: usize,
    /// Active nodes across all training graphs entering the stage.
    pub active: usize,
    /// Positive nodes among them.
    pub positives: usize,
    /// Positive class weight used.
    pub pos_weight: f32,
    /// Nodes filtered out (confident negatives) by this stage.
    pub filtered: usize,
}

/// A trained cascade of GCNs.
///
/// # Examples
///
/// ```no_run
/// use gcnt_core::{GraphData, MultiStageConfig, MultiStageGcn};
/// # fn get_training_data() -> Vec<GraphData> { unimplemented!() }
///
/// let graphs = get_training_data();
/// let refs: Vec<&GraphData> = graphs.iter().collect();
/// let (model, reports) = MultiStageGcn::train(&MultiStageConfig::default(), &refs)?;
/// let preds = model.predict(&graphs[0].tensors, &graphs[0].features)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStageGcn {
    stages: Vec<Gcn>,
    filter_threshold: f32,
}

impl MultiStageGcn {
    /// Trains the cascade on labeled graphs (full imbalanced node sets).
    ///
    /// Each stage trains on the nodes still active, with the positive class
    /// weighted by the stage's imbalance ratio, then filters out nodes it
    /// is confident are negative.
    ///
    /// # Errors
    ///
    /// Returns a shape error if graphs disagree with the model config.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or any graph is unlabeled.
    pub fn train(
        cfg: &MultiStageConfig,
        graphs: &[&GraphData],
    ) -> Result<(Self, Vec<StageReport>)> {
        assert!(!graphs.is_empty(), "need at least one training graph");
        let mut rng = gcnt_nn::seeded_rng(cfg.seed);
        // Active set per graph: initially every node.
        let mut active: Vec<Vec<usize>> = graphs
            .iter()
            .map(|g| (0..g.node_count()).collect())
            .collect();
        let mut stages = Vec::with_capacity(cfg.stages);
        let mut reports = Vec::with_capacity(cfg.stages);
        for stage in 0..cfg.stages {
            let total_active: usize = active.iter().map(Vec::len).sum();
            if stage < 4 {
                let gauge = [
                    gcnt_obs::gauges::CORE_CASCADE_STAGE0_ACTIVE,
                    gcnt_obs::gauges::CORE_CASCADE_STAGE1_ACTIVE,
                    gcnt_obs::gauges::CORE_CASCADE_STAGE2_ACTIVE,
                    gcnt_obs::gauges::CORE_CASCADE_STAGE3_ACTIVE,
                ][stage];
                gcnt_obs::global().gauge_set(gauge, total_active as f64);
            }
            let positives: usize = graphs
                .iter()
                .zip(&active)
                .map(|(g, mask)| mask.iter().filter(|&&i| g.labels[i] == 1).count())
                .sum();
            let negatives = total_active.saturating_sub(positives);
            let pos_weight = if positives == 0 {
                1.0
            } else {
                (negatives as f32 / positives as f32).clamp(1.0, cfg.max_pos_weight)
            };
            let mut gcn = Gcn::new(&cfg.gcn, &mut rng);
            let train_cfg = TrainConfig {
                epochs: cfg.epochs_per_stage,
                lr: cfg.lr,
                pos_weight,
                momentum: 0.0,
            };
            train(&mut gcn, graphs, &active, &train_cfg)?;

            // Filter confident negatives from each graph's active set.
            let mut filtered = 0usize;
            for (g, mask) in graphs.iter().zip(active.iter_mut()) {
                let probs = gcn.predict_proba(&g.tensors, &g.features)?;
                let before = mask.len();
                mask.retain(|&i| probs[i] >= cfg.filter_threshold);
                filtered += before - mask.len();
            }
            reports.push(StageReport {
                stage,
                active: total_active,
                positives,
                pos_weight,
                filtered,
            });
            stages.push(gcn);
        }
        Ok((
            MultiStageGcn {
                stages,
                filter_threshold: cfg.filter_threshold,
            },
            reports,
        ))
    }

    /// Reassembles a cascade from already-trained stages — the resume path
    /// of a checkpointed training run, where completed stages are restored
    /// from disk and only the remaining ones are retrained.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn from_stages(stages: Vec<Gcn>, filter_threshold: f32) -> Self {
        assert!(!stages.is_empty(), "a cascade needs at least one stage");
        MultiStageGcn {
            stages,
            filter_threshold,
        }
    }

    /// The trained stages.
    pub fn stages(&self) -> &[Gcn] {
        &self.stages
    }

    /// The per-stage negative-filter threshold.
    pub fn filter_threshold(&self) -> f32 {
        self.filter_threshold
    }

    /// Predicts a binary label per node: a node is positive iff it survives
    /// every stage's filter and the final stage assigns it probability at
    /// least 0.5.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the graph disagrees with the model.
    pub fn predict(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<u8>> {
        let probs = self.predict_proba(t, x)?;
        Ok(probs.iter().map(|&p| u8::from(p >= 0.5)).collect())
    }

    /// Positive probabilities per node: nodes filtered before the last
    /// stage report the probability at which they were filtered (guaranteed
    /// below the filter threshold); survivors report the last stage's
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the graph disagrees with the model.
    pub fn predict_proba(&self, t: &GraphTensors, x: &Matrix) -> Result<Vec<f32>> {
        self.predict_proba_budgeted(t, x, &gcnt_tensor::Budget::unlimited())
    }

    /// [`MultiStageGcn::predict_proba`] under a cooperative work
    /// [`gcnt_tensor::Budget`]: every stage's layers charge the budget
    /// before computing, so an exhausted or cancelled budget stops the
    /// cascade at a layer boundary.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the graph disagrees with the model, or a
    /// budget error from the inter-layer checkpoints.
    pub fn predict_proba_budgeted(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &gcnt_tensor::Budget,
    ) -> Result<Vec<f32>> {
        self.predict_proba_budgeted_with(t, x, budget, &mut crate::MatrixBackend::serial())
    }

    /// [`MultiStageGcn::predict_proba_budgeted`] through an explicit
    /// [`crate::MatrixBackend`]: every stage shares the one backend
    /// (the adjacency, and hence any partitioning, is stage-independent).
    /// Bit-identical probabilities across backends.
    ///
    /// # Errors
    ///
    /// As [`MultiStageGcn::predict_proba_budgeted`], plus
    /// [`gcnt_tensor::TensorError::StaleCache`] from a partitioned
    /// backend built against an older graph generation.
    pub fn predict_proba_budgeted_with(
        &self,
        t: &GraphTensors,
        x: &Matrix,
        budget: &gcnt_tensor::Budget,
        backend: &mut crate::MatrixBackend,
    ) -> Result<Vec<f32>> {
        gcnt_obs::global().incr(gcnt_obs::counters::CORE_CASCADE_INFERENCES);
        let n = t.node_count();
        let mut out = vec![0.0f32; n];
        let mut alive: Vec<bool> = vec![true; n];
        for (s, gcn) in self.stages.iter().enumerate() {
            let probs = gcn.predict_proba_budgeted_with(t, x, budget, backend)?;
            let last = s + 1 == self.stages.len();
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                if last {
                    out[i] = probs[i];
                } else if probs[i] < self.filter_threshold {
                    alive[i] = false;
                    out[i] = probs[i].min(0.49);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Confusion;
    use gcnt_netlist::{generate, GeneratorConfig, Scoap};

    /// Imbalanced data: ~3% positives from the SCOAP observability tail.
    fn imbalanced_data(seed: u64) -> GraphData {
        let net = generate(&GeneratorConfig::sized("ms", seed, 700));
        let scoap = Scoap::compute(&net).unwrap();
        let mut cos: Vec<u32> = net.nodes().map(|v| scoap.co(v)).collect();
        cos.sort_unstable();
        let thresh = cos[cos.len() * 97 / 100].max(1);
        let labels: Vec<u8> = net
            .nodes()
            .map(|v| u8::from(scoap.co(v) >= thresh))
            .collect();
        GraphData::from_netlist(&net, None)
            .unwrap()
            .with_labels(labels)
    }

    fn small_cfg(stages: usize) -> MultiStageConfig {
        MultiStageConfig {
            stages,
            gcn: GcnConfig {
                embed_dims: vec![8, 8],
                fc_dims: vec![8],
                ..GcnConfig::default()
            },
            epochs_per_stage: 40,
            lr: 0.1,
            filter_threshold: 0.25,
            max_pos_weight: 16.0,
            seed: 5,
        }
    }

    #[test]
    fn cascade_trains_and_reports() {
        let d = imbalanced_data(71);
        let (model, reports) = MultiStageGcn::train(&small_cfg(3), &[&d]).unwrap();
        assert_eq!(model.stages().len(), 3);
        assert_eq!(reports.len(), 3);
        // First stage sees everything.
        assert_eq!(reports[0].active, d.node_count());
        // Stages filter nodes, so active counts never increase.
        assert!(reports[1].active <= reports[0].active);
        assert!(reports[2].active <= reports[1].active);
        // The cascade uses a >1 positive weight on imbalanced data.
        assert!(reports[0].pos_weight > 1.0);
    }

    #[test]
    fn multistage_beats_single_stage_f1() {
        let d = imbalanced_data(72);
        // Single unweighted stage, no filtering.
        let single_cfg = MultiStageConfig {
            stages: 1,
            max_pos_weight: 1.0,
            ..small_cfg(1)
        };
        let (single, _) = MultiStageGcn::train(&single_cfg, &[&d]).unwrap();
        let (multi, _) = MultiStageGcn::train(&small_cfg(3), &[&d]).unwrap();
        let labels: Vec<usize> = d.labels.iter().map(|&l| l as usize).collect();
        let f1_of = |m: &MultiStageGcn| {
            let preds: Vec<usize> = m
                .predict(&d.tensors, &d.features)
                .unwrap()
                .iter()
                .map(|&p| p as usize)
                .collect();
            Confusion::from_predictions(&labels, &preds).f1()
        };
        let f1_single = f1_of(&single);
        let f1_multi = f1_of(&multi);
        assert!(
            f1_multi >= f1_single,
            "multi-stage F1 {f1_multi} should be >= single-stage {f1_single}"
        );
        assert!(f1_multi > 0.2, "multi-stage F1 {f1_multi} too low");
    }

    #[test]
    fn filtered_nodes_are_negative_predictions() {
        let d = imbalanced_data(73);
        let (model, _) = MultiStageGcn::train(&small_cfg(2), &[&d]).unwrap();
        let probs = model.predict_proba(&d.tensors, &d.features).unwrap();
        let preds = model.predict(&d.tensors, &d.features).unwrap();
        for (p, &y) in probs.iter().zip(&preds) {
            assert_eq!(y == 1, *p >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one training graph")]
    fn empty_graph_list_panics() {
        let _ = MultiStageGcn::train(&small_cfg(1), &[]);
    }

    #[test]
    fn from_stages_round_trips() {
        let d = imbalanced_data(75);
        let mut cfg = small_cfg(2);
        cfg.epochs_per_stage = 2;
        let (model, _) = MultiStageGcn::train(&cfg, &[&d]).unwrap();
        let rebuilt = MultiStageGcn::from_stages(model.stages().to_vec(), model.filter_threshold());
        assert_eq!(model, rebuilt);
    }

    #[test]
    fn serde_round_trip() {
        let d = imbalanced_data(74);
        let mut cfg = small_cfg(1);
        cfg.epochs_per_stage = 2;
        let (model, _) = MultiStageGcn::train(&cfg, &[&d]).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: MultiStageGcn = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
