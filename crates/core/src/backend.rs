//! Matrix-backend selection: serial CSR vs. partitioned CSR.
//!
//! The embed loop's hot operation is the aggregate
//! `G = E + w_pr·(P·E) + w_su·(S·E)`. [`MatrixBackend`] abstracts *how*
//! the two sparse products run:
//!
//! * [`MatrixBackend::Serial`] — the original [`GraphTensors::aggregate`]
//!   path over [`gcnt_tensor::CsrMatrix::spmm`];
//! * [`MatrixBackend::Partitioned`] — a [`PartitionedGraph`] holding both
//!   adjacencies sharded under one fanout-balanced
//!   [`gcnt_tensor::PartitionPlan`], running one worker per partition
//!   with a halo exchange per layer ([`gcnt_tensor::PartitionedCsr`]).
//!
//! Both produce **bit-identical** aggregates: the partitioned SpMM
//! preserves the serial kernel's per-row accumulation order, and the
//! `clone + axpy` combination is shared verbatim. This is what lets the
//! dirty-halo incremental engine ([`crate::incremental`]) compose with
//! partition halos — a session opened over a partitioned backend patches
//! the same bits a serial session would, so `refresh`/`revert` and the
//! generation discipline carry over unchanged.
//!
//! The same discipline extends down one more level: every SpMM here also
//! dispatches between the scalar and register-blocked *row kernels*
//! ([`gcnt_tensor::KernelPolicy`], `GCNT_KERNEL`), which are themselves
//! bit-identical by construction. Backend choice and kernel choice are
//! therefore orthogonal, and any of the six combinations produces the
//! same bits.
//!
//! The partitioned representation lives *outside* [`GraphTensors`]
//! (which is serialized and cloned freely); staleness against the graph
//! is policed with the same generation counter the embedding caches use.

use gcnt_tensor::{Matrix, PartitionPlan, PartitionScratch, PartitionedCsr, Result, TensorError};

use crate::GraphTensors;

/// Designs below this node count stay serial under
/// [`MatrixBackend::auto`]: partition setup and per-layer halo gathers
/// only pay off once the adjacency stops fitting in cache.
pub const PARTITION_AUTO_THRESHOLD: usize = 50_000;

/// Most partitions [`MatrixBackend::auto`] will create; beyond ~8 blocks
/// the halo volume grows faster than the per-worker win on CPU cores.
pub const PARTITION_MAX_AUTO: usize = 8;

/// Both adjacency matrices of one design, sharded under a single shared
/// partition plan, plus reusable halo scratch.
#[derive(Debug)]
pub struct PartitionedGraph {
    pred: PartitionedCsr,
    succ: PartitionedCsr,
    pred_scratch: PartitionScratch,
    succ_scratch: PartitionScratch,
    generation: u64,
    n: usize,
}

impl PartitionedGraph {
    /// Partitions both adjacencies of `t` into `parts` blocks balanced by
    /// combined fanin+fanout row weight (one plan for both matrices, so a
    /// partition owns the same node range in either direction).
    ///
    /// # Errors
    ///
    /// Propagates [`gcnt_tensor::PartitionedCsr::from_csr_with_plan`]
    /// errors (non-square adjacency, u32 overflow).
    pub fn new(t: &GraphTensors, parts: usize) -> Result<Self> {
        let pred = t.pred();
        let succ = t.succ();
        let weights: Vec<usize> = pred
            .indptr()
            .iter()
            .zip(pred.indptr().iter().skip(1))
            .zip(succ.indptr().iter().zip(succ.indptr().iter().skip(1)))
            .map(|((&pa, &pb), (&sa, &sb))| (pb - pa) + (sb - sa))
            .collect();
        let plan = PartitionPlan::balanced(&weights, parts);
        Ok(PartitionedGraph {
            pred: PartitionedCsr::from_csr_with_plan(pred, &plan)?,
            succ: PartitionedCsr::from_csr_with_plan(succ, &plan)?,
            pred_scratch: PartitionScratch::new(),
            succ_scratch: PartitionScratch::new(),
            generation: t.generation(),
            n: t.node_count(),
        })
    }

    /// The partitioned predecessor adjacency.
    pub fn pred(&self) -> &PartitionedCsr {
        &self.pred
    }

    /// The partitioned successor adjacency.
    pub fn succ(&self) -> &PartitionedCsr {
        &self.succ
    }

    /// Graph generation this partitioning was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Node count this partitioning was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of row blocks.
    pub fn partitions(&self) -> usize {
        self.pred.partitions()
    }

    /// Refuses to serve against a graph state this partitioning was not
    /// built for — the same staleness discipline as [`crate::EmbeddingCache`].
    fn check_fresh(&self, t: &GraphTensors) -> Result<()> {
        if self.generation != t.generation() || self.n != t.node_count() {
            return Err(TensorError::StaleCache {
                cache: self.generation,
                graph: t.generation(),
            });
        }
        Ok(())
    }

    /// The aggregate `E + w_pr·(P·E) + w_su·(S·E)` over the partitioned
    /// kernels, bit-identical to [`GraphTensors::aggregate`]'s `g` output
    /// (identical fused `(e + w_pr·pe) + w_su·se` element combination,
    /// SpMM identical by the partition kernel's guarantee).
    ///
    /// # Errors
    ///
    /// [`TensorError::StaleCache`] if the graph moved on since
    /// [`PartitionedGraph::new`], or shape errors from the kernels.
    pub fn aggregate(
        &mut self,
        t: &GraphTensors,
        e: &Matrix,
        w_pr: f32,
        w_su: f32,
    ) -> Result<Matrix> {
        self.check_fresh(t)?;
        let pe = self.pred.spmm_with(e, &mut self.pred_scratch)?;
        let se = self.succ.spmm_with(e, &mut self.succ_scratch)?;
        e.add_scaled2(w_pr, &pe, w_su, &se)
    }
}

/// How the embed loop runs its sparse aggregates; see the module docs.
#[derive(Debug, Default)]
pub enum MatrixBackend {
    /// The original serial-CSR path.
    #[default]
    Serial,
    /// Partition-parallel path over a [`PartitionedGraph`] (boxed: the
    /// sharded arenas dwarf the empty serial variant).
    Partitioned(Box<PartitionedGraph>),
}

impl MatrixBackend {
    /// The serial-CSR backend.
    pub fn serial() -> Self {
        MatrixBackend::Serial
    }

    /// A partitioned backend with an explicit partition count.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionedGraph::new`] errors.
    pub fn partitioned(t: &GraphTensors, parts: usize) -> Result<Self> {
        Ok(MatrixBackend::Partitioned(Box::new(PartitionedGraph::new(
            t, parts,
        )?)))
    }

    /// Picks a backend from the design size and the machine: partitioned
    /// with one block per core (clamped to 2..=[`PARTITION_MAX_AUTO`])
    /// for designs of at least [`PARTITION_AUTO_THRESHOLD`] nodes on a
    /// multi-core host, serial otherwise.
    pub fn auto(t: &GraphTensors) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if t.node_count() >= PARTITION_AUTO_THRESHOLD && cores >= 2 {
            let parts = cores.clamp(2, PARTITION_MAX_AUTO);
            // A square adjacency always partitions; fall back to serial
            // if it somehow cannot (e.g. u32 overflow on absurd graphs).
            match Self::partitioned(t, parts) {
                Ok(backend) => backend,
                Err(_) => MatrixBackend::Serial,
            }
        } else {
            MatrixBackend::Serial
        }
    }

    /// Whether this is the partitioned backend.
    pub fn is_partitioned(&self) -> bool {
        matches!(self, MatrixBackend::Partitioned(_))
    }

    /// Partition count (1 for the serial backend — one logical block).
    pub fn partition_count(&self) -> usize {
        match self {
            MatrixBackend::Serial => 1,
            MatrixBackend::Partitioned(pg) => pg.partitions(),
        }
    }

    /// Stable label for reports and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            MatrixBackend::Serial => "serial",
            MatrixBackend::Partitioned(_) => "partitioned",
        }
    }

    /// The partitioned graph, if any (for consistency linting).
    pub fn partitioned_graph(&self) -> Option<&PartitionedGraph> {
        match self {
            MatrixBackend::Serial => None,
            MatrixBackend::Partitioned(pg) => Some(pg),
        }
    }

    /// Re-shards a partitioned backend against the graph's current state
    /// (call after committed insertions); a serial backend is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionedGraph::new`] errors.
    pub fn rebuild(&mut self, t: &GraphTensors) -> Result<()> {
        if let MatrixBackend::Partitioned(pg) = self {
            let parts = pg.partitions();
            **pg = PartitionedGraph::new(t, parts)?;
        }
        Ok(())
    }

    /// Runs one aggregate round through the selected backend; both arms
    /// produce bit-identical results (see the module docs).
    ///
    /// # Errors
    ///
    /// Shape errors from the kernels, plus
    /// [`TensorError::StaleCache`] from a partitioned backend whose graph
    /// moved on (call [`MatrixBackend::rebuild`] after insertions).
    pub fn aggregate(
        &mut self,
        t: &GraphTensors,
        e: &Matrix,
        w_pr: f32,
        w_su: f32,
    ) -> Result<Matrix> {
        match self {
            // The fused g-only pass: bit-identical to `t.aggregate`'s
            // `g`, without materialising the `P·E` / `S·E` products the
            // inference loop would immediately drop.
            MatrixBackend::Serial => t.aggregate_g(e, w_pr, w_su),
            MatrixBackend::Partitioned(pg) => pg.aggregate(t, e, w_pr, w_su),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphData;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn data(nodes: usize) -> GraphData {
        let net = generate(&GeneratorConfig::sized("bk", 3, nodes));
        GraphData::from_netlist(&net, None).unwrap()
    }

    #[test]
    fn partitioned_aggregate_matches_serial_bitwise() {
        let d = data(300);
        let e = &d.features;
        let (serial, _, _) = d.tensors.aggregate(e, 0.45, 0.55).unwrap();
        for parts in [1usize, 2, 3, 5, 8] {
            let mut backend = MatrixBackend::partitioned(&d.tensors, parts).unwrap();
            assert!(backend.is_partitioned());
            let got = backend.aggregate(&d.tensors, e, 0.45, 0.55).unwrap();
            assert_eq!(got, serial, "parts = {parts}");
        }
    }

    #[test]
    fn serial_backend_matches_graph_tensors() {
        let d = data(150);
        let (reference, _, _) = d.tensors.aggregate(&d.features, 0.5, 0.5).unwrap();
        let mut backend = MatrixBackend::serial();
        assert_eq!(backend.partition_count(), 1);
        assert_eq!(backend.label(), "serial");
        let got = backend
            .aggregate(&d.tensors, &d.features, 0.5, 0.5)
            .unwrap();
        assert_eq!(got, reference);
    }

    #[test]
    fn stale_partitioning_is_refused_and_rebuild_heals() {
        let net = generate(&GeneratorConfig::sized("bk", 5, 200));
        let mut net = net;
        let d = GraphData::from_netlist(&net, None).unwrap();
        let mut t = d.tensors.clone();
        let mut backend = MatrixBackend::partitioned(&t, 4).unwrap();
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty())
            .expect("internal node");
        let op = net.insert_observation_point(target).unwrap();
        t.insert_observation_point(target, op).unwrap();
        let mut x = d.features.clone();
        x.push_row(&[0.0, 1.0, 1.0, 0.0]).unwrap();
        let err = backend.aggregate(&t, &x, 0.5, 0.5);
        assert!(matches!(err, Err(TensorError::StaleCache { .. })));
        backend.rebuild(&t).unwrap();
        let (reference, _, _) = t.aggregate(&x, 0.5, 0.5).unwrap();
        assert_eq!(backend.aggregate(&t, &x, 0.5, 0.5).unwrap(), reference);
    }

    #[test]
    fn auto_stays_serial_for_small_designs() {
        let d = data(120);
        let backend = MatrixBackend::auto(&d.tensors);
        assert!(!backend.is_partitioned(), "120 nodes must stay serial");
    }
}
