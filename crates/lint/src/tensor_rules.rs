//! Sparse-tensor rules (`TS...`): CSR/COO structural invariants, value
//! sanity, and tensor-vs-netlist consistency.

use gcnt_core::GraphTensors;
use gcnt_netlist::Netlist;
use gcnt_tensor::{CooMatrix, CsrMatrix};

use crate::netlist_rules::Capped;
use crate::report::{LintReport, RuleId};

/// Checks the structural invariants of a CSR matrix (`TS002`) and the
/// finiteness of its values (`TS003`). `context` names the matrix in the
/// findings, e.g. `"tensors.pred"`.
pub fn lint_csr(csr: &CsrMatrix, context: &'static str) -> LintReport {
    let mut report = LintReport::new();

    let indptr = csr.indptr();
    let structural_ok = {
        let mut capped = Capped::new(&mut report, RuleId::CsrSortedIndices, context);
        let mut ok = true;
        if indptr.len() != csr.rows() + 1 {
            capped.report(format!(
                "indptr has {} entries for {} rows, expected {}",
                indptr.len(),
                csr.rows(),
                csr.rows() + 1
            ));
            ok = false;
        }
        if indptr.first().copied() != Some(0) {
            capped.report(format!("indptr starts at {:?}, expected 0", indptr.first()));
            ok = false;
        }
        if indptr.last().copied() != Some(csr.indices().len()) {
            capped.report(format!(
                "indptr ends at {:?}, expected nnz = {}",
                indptr.last(),
                csr.indices().len()
            ));
            ok = false;
        }
        if csr.indices().len() != csr.values().len() {
            capped.report(format!(
                "{} column indices but {} values",
                csr.indices().len(),
                csr.values().len()
            ));
            ok = false;
        }
        for (r, w) in indptr.windows(2).enumerate() {
            if w[0] > w[1] {
                capped.report(format!(
                    "indptr not monotone at row {r}: {} > {}",
                    w[0], w[1]
                ));
                ok = false;
            }
        }
        ok
    };

    // Per-row checks need a coherent indptr to slice with.
    if structural_ok {
        let mut capped = Capped::new(&mut report, RuleId::CsrSortedIndices, context);
        for r in 0..csr.rows() {
            let row = &csr.indices()[indptr[r]..indptr[r + 1]];
            for &c in row {
                if c as usize >= csr.cols() {
                    capped.report(format!(
                        "row {r} references column {c}, but the matrix has {} columns",
                        csr.cols()
                    ));
                }
            }
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    capped.report(format!(
                        "row {r} columns not strictly increasing: {} then {}",
                        w[0], w[1]
                    ));
                }
            }
        }
    }

    {
        let mut capped = Capped::new(&mut report, RuleId::NanOrInfValue, context);
        for (k, v) in csr.values().iter().enumerate() {
            if !v.is_finite() {
                capped.report(format!("non-finite value {v} at nnz position {k}"));
            }
        }
    }

    report
}

/// Checks a COO matrix: in-bounds coordinates (`TS002`) and finite values
/// (`TS003`).
pub fn lint_coo(coo: &CooMatrix, context: &'static str) -> LintReport {
    let mut report = LintReport::new();
    {
        let mut bounds = Capped::new(&mut report, RuleId::CsrSortedIndices, context);
        for (k, (r, c, _)) in coo.iter().enumerate() {
            if r >= coo.rows() || c >= coo.cols() {
                bounds.report(format!(
                    "entry {k} at ({r}, {c}) outside the {}x{} matrix",
                    coo.rows(),
                    coo.cols()
                ));
            }
        }
    }
    {
        let mut finite = Capped::new(&mut report, RuleId::NanOrInfValue, context);
        for (k, (_, _, v)) in coo.iter().enumerate() {
            if !v.is_finite() {
                finite.report(format!("non-finite value {v} at entry {k}"));
            }
        }
    }
    report
}

/// Checks graph tensors against the netlist they model (`TS001`), then
/// runs the CSR checks on both adjacency matrices.
///
/// Expects tensors built with both directions enabled
/// ([`GraphTensors::from_netlist`]); direction-ablated tensors
/// intentionally drop edges and should not be linted against the netlist.
pub fn lint_graph_tensors(net: &Netlist, t: &GraphTensors) -> LintReport {
    let mut report = LintReport::new();
    let context = "tensors";

    if t.node_count() != net.node_count() {
        report.report(
            RuleId::AdjacencyNetlistMismatch,
            context,
            format!(
                "tensors model {} nodes, netlist has {}",
                t.node_count(),
                net.node_count()
            ),
        );
        // Everything below indexes by node id; stop at a shape mismatch.
        return report;
    }
    if t.edge_count() != net.edge_count() {
        report.report(
            RuleId::AdjacencyNetlistMismatch,
            context,
            format!(
                "tensors hold {} edges, netlist has {}",
                t.edge_count(),
                net.edge_count()
            ),
        );
    }

    {
        let mut capped = Capped::new(&mut report, RuleId::AdjacencyNetlistMismatch, context);
        for v in net.nodes() {
            let mut fanin: Vec<u32> = net.fanin(v).iter().map(|u| u.index() as u32).collect();
            fanin.sort_unstable();
            let mut pred: Vec<u32> = t.pred().row(v.index()).map(|(c, _)| c as u32).collect();
            pred.sort_unstable();
            if fanin != pred {
                capped.report(format!(
                    "pred row {} disagrees with netlist fanin ({} vs {} drivers)",
                    v.index(),
                    pred.len(),
                    fanin.len()
                ));
            }
            let mut fanout: Vec<u32> = net.fanout(v).iter().map(|u| u.index() as u32).collect();
            fanout.sort_unstable();
            let mut succ: Vec<u32> = t.succ().row(v.index()).map(|(c, _)| c as u32).collect();
            succ.sort_unstable();
            if fanout != succ {
                capped.report(format!(
                    "succ row {} disagrees with netlist fanout ({} vs {} sinks)",
                    v.index(),
                    succ.len(),
                    fanout.len()
                ));
            }
        }
    }

    report.merge(lint_csr(t.pred(), "tensors.pred"));
    report.merge(lint_csr(t.succ(), "tensors.succ"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, CellKind, GeneratorConfig};

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(2, 2, 3.0);
        coo.to_csr()
    }

    #[test]
    fn well_formed_csr_is_clean() {
        assert!(lint_csr(&sample_csr(), "test").is_clean());
    }

    #[test]
    fn shuffled_columns_fire_ts002() {
        let good = sample_csr();
        let bad = CsrMatrix::from_raw_parts_unchecked(
            3,
            3,
            vec![0, 2, 3, 3],
            vec![1, 0, 0], // row 0 now has columns [1, 0]: unsorted
            good.values().to_vec(),
        );
        let report = lint_csr(&bad, "test");
        assert!(report.fired(RuleId::CsrSortedIndices));
    }

    #[test]
    fn out_of_bounds_column_fires_ts002() {
        let bad = CsrMatrix::from_raw_parts_unchecked(2, 2, vec![0, 1, 1], vec![9], vec![1.0]);
        let report = lint_csr(&bad, "test");
        assert!(report.fired(RuleId::CsrSortedIndices));
    }

    #[test]
    fn broken_indptr_fires_ts002() {
        let bad =
            CsrMatrix::from_raw_parts_unchecked(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        let report = lint_csr(&bad, "test");
        assert!(report.fired(RuleId::CsrSortedIndices));
    }

    #[test]
    fn nan_value_fires_ts003() {
        let bad = CsrMatrix::from_raw_parts_unchecked(
            2,
            2,
            vec![0, 1, 2],
            vec![0, 1],
            vec![1.0, f32::NAN],
        );
        let report = lint_csr(&bad, "test");
        assert!(report.fired(RuleId::NanOrInfValue));
        assert!(!report.fired(RuleId::CsrSortedIndices));
    }

    #[test]
    fn coo_nan_and_bounds_fire() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, f32::INFINITY);
        let report = lint_coo(&coo, "test");
        assert!(report.fired(RuleId::NanOrInfValue));

        // grow() then shrink is impossible through the API, so emulate an
        // out-of-bounds entry by building at a larger shape first.
        let mut big = CooMatrix::new(4, 4);
        big.push(3, 3, 1.0);
        let report = lint_coo(&big, "test");
        assert!(report.is_clean());
    }

    #[test]
    fn tensors_match_their_netlist() {
        let net = generate(&GeneratorConfig::sized("ok", 5, 60));
        let t = GraphTensors::from_netlist(&net);
        let report = lint_graph_tensors(&net, &t);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_tensors_fire_ts001() {
        let mut net = generate(&GeneratorConfig::sized("stale", 5, 60));
        let t = GraphTensors::from_netlist(&net);
        // Grow the netlist without updating the tensors.
        let target = net
            .nodes()
            .find(|&v| net.kind(v) != CellKind::Output)
            .unwrap();
        net.insert_observation_point(target).unwrap();
        let report = lint_graph_tensors(&net, &t);
        assert!(report.fired(RuleId::AdjacencyNetlistMismatch));
    }

    #[test]
    fn wrong_netlists_tensors_fire_ts001() {
        // Tensors built for a differently seeded netlist of the same target
        // size: counts can collide, the per-row comparison cannot.
        let net = generate(&GeneratorConfig::sized("drop", 5, 60));
        let other = generate(&GeneratorConfig::sized("other", 17, 60));
        let t = GraphTensors::from_netlist(&other);
        let report = lint_graph_tensors(&net, &t);
        assert!(report.fired(RuleId::AdjacencyNetlistMismatch));
    }
}
