//! Checkpoint rules: `CK001` checksum integrity, `CK002` format version,
//! `CK003` required-state presence.
//!
//! The runtime crate owns the checkpoint *format*; this module only sees a
//! plain [`CheckpointMeta`] summary of what was read from disk, so the lint
//! crate stays free of a dependency on the runtime (which itself links the
//! linter to validate restored models with the `MD` rules).

use crate::report::{LintReport, RuleId};

/// Format-level facts about one checkpoint file, as observed by whoever
/// parsed it. All strings are pre-rendered so this type carries no
/// runtime-crate types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Path (or other identifier) of the checkpoint, used as the finding
    /// context.
    pub path: String,
    /// The format version the file declares.
    pub version: u32,
    /// The format version this build supports.
    pub supported_version: u32,
    /// Checksum stored in the file header (hex).
    pub stored_checksum: String,
    /// Checksum recomputed over the payload (hex).
    pub computed_checksum: String,
    /// Names of required state sections that are absent, e.g.
    /// `"optimizer"` when a momentum run's checkpoint has no velocity.
    pub missing_state: Vec<String>,
}

/// Checks one checkpoint's metadata: `CK001` (stored vs recomputed
/// checksum), `CK002` (declared vs supported version), `CK003` (missing
/// required state sections).
pub fn lint_checkpoint_meta(meta: &CheckpointMeta) -> LintReport {
    let mut report = LintReport::new();
    if meta.stored_checksum != meta.computed_checksum {
        report.report(
            RuleId::ChecksumMismatch,
            &meta.path,
            format!(
                "stored checksum {} but payload hashes to {}",
                meta.stored_checksum, meta.computed_checksum
            ),
        );
    }
    if meta.version != meta.supported_version {
        report.report(
            RuleId::UnsupportedVersion,
            &meta.path,
            format!(
                "checkpoint is version {} but this build supports version {}",
                meta.version, meta.supported_version
            ),
        );
    }
    for section in &meta.missing_state {
        report.report(
            RuleId::MissingState,
            &meta.path,
            format!("required state section `{section}` is absent"),
        );
    }
    report
}

/// Checks that a restored optimizer's per-parameter state lengths line up
/// with the model's parameter lengths (`CK003`): a checkpoint whose
/// optimizer was saved against a differently shaped model must not be
/// resumed.
pub fn lint_optimizer_shape(
    path: &str,
    model_param_lens: &[usize],
    optimizer_param_lens: &[usize],
) -> LintReport {
    let mut report = LintReport::new();
    if model_param_lens != optimizer_param_lens {
        report.report(
            RuleId::MissingState,
            path,
            format!(
                "optimizer state shape {optimizer_param_lens:?} does not match \
                 model parameter shape {model_param_lens:?}"
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_meta() -> CheckpointMeta {
        CheckpointMeta {
            path: "ckpt/epoch-5.json".to_string(),
            version: 1,
            supported_version: 1,
            stored_checksum: "deadbeef".to_string(),
            computed_checksum: "deadbeef".to_string(),
            missing_state: Vec::new(),
        }
    }

    #[test]
    fn clean_checkpoint_yields_empty_report() {
        assert!(lint_checkpoint_meta(&clean_meta()).is_clean());
    }

    #[test]
    fn checksum_mismatch_fires_ck001() {
        let mut meta = clean_meta();
        meta.computed_checksum = "0badf00d".to_string();
        let report = lint_checkpoint_meta(&meta);
        assert!(report.fired(RuleId::ChecksumMismatch));
        assert!(report.has_errors());
        assert_eq!(RuleId::ChecksumMismatch.code(), "CK001");
    }

    #[test]
    fn version_mismatch_fires_ck002() {
        let mut meta = clean_meta();
        meta.version = 99;
        let report = lint_checkpoint_meta(&meta);
        assert!(report.fired(RuleId::UnsupportedVersion));
        assert!(!report.fired(RuleId::ChecksumMismatch));
    }

    #[test]
    fn missing_sections_fire_ck003_each() {
        let mut meta = clean_meta();
        meta.missing_state = vec!["optimizer".to_string(), "rng".to_string()];
        let report = lint_checkpoint_meta(&meta);
        assert_eq!(report.of_rule(RuleId::MissingState).count(), 2);
    }

    #[test]
    fn optimizer_shape_mismatch_fires_ck003() {
        let ok = lint_optimizer_shape("c.json", &[2, 8, 4], &[2, 8, 4]);
        assert!(ok.is_clean());
        let bad = lint_optimizer_shape("c.json", &[2, 8, 4], &[2, 8]);
        assert!(bad.fired(RuleId::MissingState));
        assert!(bad.findings()[0].message.contains("[2, 8]"));
    }
}
