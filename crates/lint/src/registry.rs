//! The rule registry: one descriptor per lint rule, with stable codes,
//! slugs, severities, and one-line summaries.

use crate::report::{RuleId, Severity};

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDescriptor {
    /// The rule's identifier.
    pub id: RuleId,
    /// Stable code, e.g. `"NL001"`. `NL` rules check netlist structure,
    /// `TS` rules check tensors, `MD` rules check model state, `CK` rules
    /// check checkpoint files, `EC` rules check embedding caches.
    pub code: &'static str,
    /// Stable kebab-case slug, e.g. `"combinational-cycle"`.
    pub slug: &'static str,
    /// Severity carried by this rule's findings.
    pub severity: Severity,
    /// One-line summary shown by `gcnt lint --rules`.
    pub summary: &'static str,
}

/// Every rule the linter knows, in code order.
pub const RULES: &[RuleDescriptor] = &[
    RuleDescriptor {
        id: RuleId::CombinationalCycle,
        code: "NL001",
        slug: "combinational-cycle",
        severity: Severity::Error,
        summary: "combinational logic (with DFFs cut) contains a cycle",
    },
    RuleDescriptor {
        id: RuleId::BadArity,
        code: "NL002",
        slug: "bad-arity",
        severity: Severity::Error,
        summary: "cell fanin count violates its kind's arity bounds",
    },
    RuleDescriptor {
        id: RuleId::DanglingNet,
        code: "NL003",
        slug: "dangling-net",
        severity: Severity::Warning,
        summary: "non-output node drives no sinks",
    },
    RuleDescriptor {
        id: RuleId::FloatingInput,
        code: "NL004",
        slug: "floating-input",
        severity: Severity::Error,
        summary: "node that requires inputs has no drivers",
    },
    RuleDescriptor {
        id: RuleId::LevelMonotonicity,
        code: "NL005",
        slug: "level-monotonicity",
        severity: Severity::Error,
        summary: "stored logic level differs from 1 + max(fanin levels)",
    },
    RuleDescriptor {
        id: RuleId::ScoapRange,
        code: "NL006",
        slug: "scoap-range",
        severity: Severity::Error,
        summary: "SCOAP measure outside its legal range",
    },
    RuleDescriptor {
        id: RuleId::AdjacencyNetlistMismatch,
        code: "TS001",
        slug: "adjacency-netlist-mismatch",
        severity: Severity::Error,
        summary: "graph tensors disagree with the source netlist",
    },
    RuleDescriptor {
        id: RuleId::CsrSortedIndices,
        code: "TS002",
        slug: "csr-sorted-indices",
        severity: Severity::Error,
        summary: "sparse matrix structure broken (indptr/indices invariants)",
    },
    RuleDescriptor {
        id: RuleId::NanOrInfValue,
        code: "TS003",
        slug: "nan-or-inf-value",
        severity: Severity::Error,
        summary: "sparse matrix holds a NaN or infinite value",
    },
    RuleDescriptor {
        id: RuleId::WeightNan,
        code: "MD001",
        slug: "weight-nan",
        severity: Severity::Error,
        summary: "model parameter is NaN or infinite",
    },
    RuleDescriptor {
        id: RuleId::LayerShapeMismatch,
        code: "MD002",
        slug: "layer-shape-mismatch",
        severity: Severity::Error,
        summary: "adjacent model layers have incompatible shapes",
    },
    RuleDescriptor {
        id: RuleId::ChecksumMismatch,
        code: "CK001",
        slug: "checkpoint-checksum-mismatch",
        severity: Severity::Error,
        summary: "checkpoint payload checksum differs from the stored one",
    },
    RuleDescriptor {
        id: RuleId::UnsupportedVersion,
        code: "CK002",
        slug: "checkpoint-version-unsupported",
        severity: Severity::Error,
        summary: "checkpoint declares an unsupported format version",
    },
    RuleDescriptor {
        id: RuleId::MissingState,
        code: "CK003",
        slug: "checkpoint-missing-state",
        severity: Severity::Error,
        summary: "checkpoint lacks state required to resume (e.g. optimizer)",
    },
    RuleDescriptor {
        id: RuleId::EmbeddingCacheConsistency,
        code: "EC001",
        slug: "embedding-cache-consistency",
        severity: Severity::Error,
        summary: "embedding cache disagrees with its graph (rows or generation)",
    },
    RuleDescriptor {
        id: RuleId::JournalChecksumMismatch,
        code: "JN001",
        slug: "journal-record-checksum-mismatch",
        severity: Severity::Error,
        summary: "journal record payload checksum differs from the stored one",
    },
    RuleDescriptor {
        id: RuleId::JournalSequenceGap,
        code: "JN002",
        slug: "journal-sequence-gap",
        severity: Severity::Error,
        summary: "journal records are not consecutively numbered from zero",
    },
    RuleDescriptor {
        id: RuleId::JournalGrowthCap,
        code: "JN003",
        slug: "journal-growth-cap",
        severity: Severity::Warning,
        summary: "journal exceeds its configured record or byte cap (compact it)",
    },
    RuleDescriptor {
        id: RuleId::PageChecksumMismatch,
        code: "PG001",
        slug: "page-checksum-mismatch",
        severity: Severity::Error,
        summary: "store page fails its integrity check (magic/length/checksum)",
    },
    RuleDescriptor {
        id: RuleId::StoreVersionUnsupported,
        code: "PG002",
        slug: "store-version-unsupported",
        severity: Severity::Error,
        summary: "store metadata declares an unsupported format version",
    },
    RuleDescriptor {
        id: RuleId::SegmentPageMissing,
        code: "PG003",
        slug: "segment-page-missing",
        severity: Severity::Error,
        summary: "segment references a page past the committed page count",
    },
    RuleDescriptor {
        id: RuleId::PartitionConsistency,
        code: "PT001",
        slug: "partition-consistency",
        severity: Severity::Error,
        summary: "partitioned adjacency violates sharding invariants or lags its graph",
    },
    RuleDescriptor {
        id: RuleId::FrameEnvelopeBroken,
        code: "NT001",
        slug: "frame-envelope-broken",
        severity: Severity::Error,
        summary: "wire frame envelope malformed (magic/length-cap/checksum)",
    },
    RuleDescriptor {
        id: RuleId::FrameVersionUnsupported,
        code: "NT002",
        slug: "frame-version-unsupported",
        severity: Severity::Error,
        summary: "wire frame declares an unsupported protocol version",
    },
];

/// Looks up the descriptor of a rule.
pub fn rule(id: RuleId) -> &'static RuleDescriptor {
    RULES
        .iter()
        .find(|r| r.id == id)
        .expect("every RuleId has a registry entry")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_slugs_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.code, b.code);
                assert_ne!(a.slug, b.slug);
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn registry_covers_all_prefixes() {
        assert!(RULES.iter().any(|r| r.code.starts_with("NL")));
        assert!(RULES.iter().any(|r| r.code.starts_with("TS")));
        assert!(RULES.iter().any(|r| r.code.starts_with("MD")));
        assert!(RULES.iter().any(|r| r.code.starts_with("CK")));
        assert!(RULES.iter().any(|r| r.code.starts_with("EC")));
        assert!(RULES.iter().any(|r| r.code.starts_with("JN")));
        assert!(RULES.iter().any(|r| r.code.starts_with("PG")));
        assert!(RULES.iter().any(|r| r.code.starts_with("PT")));
        assert!(RULES.iter().any(|r| r.code.starts_with("NT")));
        assert_eq!(RULES.len(), 24);
    }
}
