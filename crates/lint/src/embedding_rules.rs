//! `EC` rules: incremental-inference embedding-cache consistency.
//!
//! The incremental engine (`gcnt_core::incremental`) serves cached
//! per-layer embeddings in place of a full forward pass, so a cache that
//! has drifted from its graph — wrong row counts after an insertion, or a
//! generation mismatch — silently produces wrong probabilities rather
//! than a crash. `EC001` catches both drift modes.

use gcnt_core::incremental::EmbeddingCache;
use gcnt_core::GraphTensors;

use crate::report::{LintReport, RuleId};

/// `EC001 embedding-cache-consistency`: every cached layer must have one
/// row per graph node, and the cache generation must match the graph's
/// structural-update counter.
pub fn lint_embedding_cache(
    tensors: &GraphTensors,
    cache: &EmbeddingCache,
    context: &str,
) -> LintReport {
    let mut report = LintReport::new();
    let n = tensors.node_count();
    for (d, layer) in cache.layers().iter().enumerate() {
        if layer.rows() != n {
            report.report(
                RuleId::EmbeddingCacheConsistency,
                context,
                format!(
                    "cached layer {d} holds {} rows but the graph has {n} nodes",
                    layer.rows()
                ),
            );
        }
    }
    if cache.generation() != tensors.generation() {
        report.report(
            RuleId::EmbeddingCacheConsistency,
            context,
            format!(
                "cache generation {} does not match graph generation {}",
                cache.generation(),
                tensors.generation()
            ),
        );
    }
    report
}

/// Lints every per-stage cache of an incremental-inference session.
pub fn lint_embedding_caches(tensors: &GraphTensors, caches: &[EmbeddingCache]) -> LintReport {
    let mut report = LintReport::new();
    for (i, cache) in caches.iter().enumerate() {
        report.merge(lint_embedding_cache(
            tensors,
            cache,
            &format!("session.stage[{i}]"),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{Gcn, GcnConfig, GraphData};
    use gcnt_netlist::{generate, GeneratorConfig};

    fn cache_and_tensors() -> (GraphTensors, EmbeddingCache, gcnt_netlist::Netlist) {
        let net = generate(&GeneratorConfig::sized("ec", 6, 120));
        let data = GraphData::from_netlist(&net, None).unwrap();
        let gcn = Gcn::new(
            &GcnConfig {
                embed_dims: vec![4, 4],
                fc_dims: vec![4],
                ..GcnConfig::default()
            },
            &mut gcnt_nn::seeded_rng(0),
        );
        let cache = gcn.embed_cached(&data.tensors, &data.features).unwrap();
        (data.tensors, cache, net)
    }

    #[test]
    fn fresh_cache_is_clean() {
        let (tensors, cache, _) = cache_and_tensors();
        let report = lint_embedding_cache(&tensors, &cache, "session.stage[0]");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_generation_and_short_rows_fire_ec001() {
        let (mut tensors, cache, mut net) = cache_and_tensors();
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty())
            .expect("generated design has internal nodes");
        let op = net.insert_observation_point(target).unwrap();
        tensors.insert_observation_point(target, op).unwrap();
        // The cache now lags by one node and one generation.
        let report = lint_embedding_caches(&tensors, std::slice::from_ref(&cache));
        assert!(report.fired(RuleId::EmbeddingCacheConsistency));
        assert!(report.has_errors());
        // One row-count finding per layer plus one generation finding.
        assert_eq!(
            report.of_rule(RuleId::EmbeddingCacheConsistency).count(),
            cache.layers().len() + 1
        );
        assert_eq!(RuleId::EmbeddingCacheConsistency.code(), "EC001");
    }
}
