//! Write-ahead journal rules: `JN001` per-record checksum integrity,
//! `JN002` sequence continuity, `JN003` growth caps.
//!
//! The serve crate owns the journal *format*; this module only sees a
//! plain [`JournalRecordMeta`] summary per record (mirroring how
//! [`crate::CheckpointMeta`] keeps the linter free of runtime types), so
//! any journaling consumer can validate a recovered record stream before
//! replaying it.

use crate::report::{LintReport, RuleId};

/// Format-level facts about one recovered journal record, as observed by
/// whoever parsed the journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecordMeta {
    /// Sequence number the record declares.
    pub seq: u64,
    /// Checksum stored in the record (hex).
    pub stored_checksum: String,
    /// Checksum recomputed over the record's payload (hex).
    pub computed_checksum: String,
}

/// Checks a recovered record stream: `JN001` fires per record whose
/// stored checksum disagrees with its payload, `JN002` fires where the
/// declared sequence numbers deviate from `0, 1, 2, ...`.
///
/// `path` names the journal in the findings' context. An empty stream is
/// clean — a journal that never got its first record is a valid fresh
/// start, not a gap.
pub fn lint_journal_records(path: &str, records: &[JournalRecordMeta]) -> LintReport {
    let mut report = LintReport::new();
    for (expected, rec) in records.iter().enumerate() {
        if rec.stored_checksum != rec.computed_checksum {
            report.report(
                RuleId::JournalChecksumMismatch,
                path,
                format!(
                    "record {} stores checksum {} but its payload hashes to {}",
                    rec.seq, rec.stored_checksum, rec.computed_checksum
                ),
            );
        }
        if rec.seq != expected as u64 {
            report.report(
                RuleId::JournalSequenceGap,
                path,
                format!(
                    "record at position {expected} declares sequence {}",
                    rec.seq
                ),
            );
        }
    }
    report
}

/// Growth caps for a write-ahead journal. `None` disables a dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalCaps {
    /// Maximum live (uncompacted) records before `JN003` fires.
    pub max_records: Option<u64>,
    /// Maximum on-disk journal bytes before `JN003` fires.
    pub max_bytes: Option<u64>,
}

/// Checks a journal's size against its caps: `JN003` fires (as a
/// warning) per exceeded dimension. An unbounded journal on a long-lived
/// job is a disk-space and replay-time liability; the fix is compaction,
/// not data loss, hence warning severity.
pub fn lint_journal_growth(path: &str, records: u64, bytes: u64, caps: &JournalCaps) -> LintReport {
    let mut report = LintReport::new();
    if let Some(cap) = caps.max_records {
        if records > cap {
            report.report(
                RuleId::JournalGrowthCap,
                path,
                format!("{records} live records exceed the cap of {cap} — compact the journal"),
            );
        }
    }
    if let Some(cap) = caps.max_bytes {
        if bytes > cap {
            report.report(
                RuleId::JournalGrowthCap,
                path,
                format!("{bytes} bytes on disk exceed the cap of {cap} — compact the journal"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    fn clean_stream(n: u64) -> Vec<JournalRecordMeta> {
        (0..n)
            .map(|seq| JournalRecordMeta {
                seq,
                stored_checksum: format!("{seq:016x}"),
                computed_checksum: format!("{seq:016x}"),
            })
            .collect()
    }

    #[test]
    fn clean_stream_yields_empty_report() {
        assert!(lint_journal_records("job.wal", &clean_stream(4)).is_clean());
        assert!(lint_journal_records("job.wal", &[]).is_clean());
    }

    #[test]
    fn corrupt_record_fires_jn001() {
        let mut records = clean_stream(3);
        records[1].computed_checksum = "0badf00d".to_string();
        let report = lint_journal_records("job.wal", &records);
        assert!(report.fired(RuleId::JournalChecksumMismatch));
        assert!(!report.fired(RuleId::JournalSequenceGap));
        assert!(report.has_errors());
        assert_eq!(RuleId::JournalChecksumMismatch.code(), "JN001");
    }

    #[test]
    fn missing_record_fires_jn002() {
        let mut records = clean_stream(4);
        records.remove(2); // seqs 0, 1, 3
        let report = lint_journal_records("job.wal", &records);
        assert!(report.fired(RuleId::JournalSequenceGap));
        assert_eq!(RuleId::JournalSequenceGap.code(), "JN002");
        // Only positions from the gap on are misnumbered.
        assert_eq!(report.of_rule(RuleId::JournalSequenceGap).count(), 1);
    }

    #[test]
    fn reordered_records_fire_jn002_per_offender() {
        let mut records = clean_stream(3);
        records.swap(0, 2);
        let report = lint_journal_records("job.wal", &records);
        assert_eq!(report.of_rule(RuleId::JournalSequenceGap).count(), 2);
    }

    #[test]
    fn growth_within_caps_is_clean() {
        let caps = JournalCaps {
            max_records: Some(100),
            max_bytes: Some(1 << 20),
        };
        assert!(lint_journal_growth("job.wal", 100, 1 << 20, &caps).is_clean());
        // Disabled dimensions never fire.
        assert!(
            lint_journal_growth("job.wal", u64::MAX, u64::MAX, &JournalCaps::default()).is_clean()
        );
    }

    #[test]
    fn growth_over_caps_fires_jn003_as_warning() {
        let caps = JournalCaps {
            max_records: Some(10),
            max_bytes: Some(4096),
        };
        let report = lint_journal_growth("job.wal", 11, 5000, &caps);
        assert_eq!(report.of_rule(RuleId::JournalGrowthCap).count(), 2);
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warning), 2);
        assert_eq!(RuleId::JournalGrowthCap.code(), "JN003");
    }
}
