//! Model-state rules (`MD...`): parameter finiteness and inter-layer
//! shape consistency for [`Linear`], [`Mlp`], [`Gcn`] and
//! [`MultiStageGcn`].
//!
//! Deserialised checkpoints are the main client: the serde layer restores
//! whatever the file says, so a truncated or hand-edited checkpoint can
//! carry NaN weights or layers that no longer chain.

use gcnt_core::{Gcn, MultiStageGcn};
use gcnt_nn::{Linear, Mlp};

use crate::netlist_rules::Capped;
use crate::report::{LintReport, RuleId};

fn lint_linear_into(report: &mut LintReport, layer: &Linear, context: &'static str, label: String) {
    {
        let mut nan = Capped::new(report, RuleId::WeightNan, context);
        let bad_w = layer
            .weight()
            .as_slice()
            .iter()
            .filter(|v| !v.is_finite())
            .count();
        if bad_w > 0 {
            nan.report(format!(
                "{label}: {bad_w} non-finite weight value(s) out of {}",
                layer.weight().as_slice().len()
            ));
        }
        let bad_b = layer.bias().iter().filter(|v| !v.is_finite()).count();
        if bad_b > 0 {
            nan.report(format!(
                "{label}: {bad_b} non-finite bias value(s) out of {}",
                layer.bias().len()
            ));
        }
    }
    if layer.bias().len() != layer.fan_out() {
        report.report(
            RuleId::LayerShapeMismatch,
            context,
            format!(
                "{label}: bias has {} entries for fan-out {}",
                layer.bias().len(),
                layer.fan_out()
            ),
        );
    }
}

/// Checks a single layer: fires `MD001` for non-finite weights or biases
/// and `MD002` when the bias length disagrees with the weight fan-out.
pub fn lint_linear(layer: &Linear, context: &'static str) -> LintReport {
    let mut report = LintReport::new();
    lint_linear_into(&mut report, layer, context, "layer".to_string());
    report
}

/// Checks an MLP: per-layer `MD001`/`MD002`, plus `MD002` when
/// consecutive layers do not chain (`layer[i].fan_out() !=
/// layer[i+1].fan_in()`).
pub fn lint_mlp(mlp: &Mlp, context: &'static str) -> LintReport {
    let mut report = LintReport::new();
    for (i, layer) in mlp.layers().iter().enumerate() {
        lint_linear_into(&mut report, layer, context, format!("layer {i}"));
    }
    for (i, pair) in mlp.layers().windows(2).enumerate() {
        if pair[0].fan_out() != pair[1].fan_in() {
            report.report(
                RuleId::LayerShapeMismatch,
                context,
                format!(
                    "layer {i} feeds {} features into layer {} expecting {}",
                    pair[0].fan_out(),
                    i + 1,
                    pair[1].fan_in()
                ),
            );
        }
    }
    report
}

/// Checks a GCN: finite aggregation weights (`MD001`), per-encoder and
/// head checks, plus `MD002` when the encoder chain or the encoder→head
/// junction does not line up.
pub fn lint_gcn(gcn: &Gcn, context: &'static str) -> LintReport {
    let mut report = LintReport::new();
    for (name, w) in [("w_pr", gcn.w_pr()), ("w_su", gcn.w_su())] {
        if !w.is_finite() {
            report.report(
                RuleId::WeightNan,
                context,
                format!("aggregation weight {name} is {w}"),
            );
        }
    }
    for (i, enc) in gcn.encoders().iter().enumerate() {
        lint_linear_into(&mut report, enc, context, format!("encoder {i}"));
    }
    for (i, pair) in gcn.encoders().windows(2).enumerate() {
        if pair[0].fan_out() != pair[1].fan_in() {
            report.report(
                RuleId::LayerShapeMismatch,
                context,
                format!(
                    "encoder {i} emits {} features, encoder {} expects {}",
                    pair[0].fan_out(),
                    i + 1,
                    pair[1].fan_in()
                ),
            );
        }
    }
    if let Some(last) = gcn.encoders().last() {
        if last.fan_out() != gcn.head().fan_in() {
            report.report(
                RuleId::LayerShapeMismatch,
                context,
                format!(
                    "last encoder emits {} features, classifier head expects {}",
                    last.fan_out(),
                    gcn.head().fan_in()
                ),
            );
        }
    }
    report.merge(lint_mlp(gcn.head(), context));
    report
}

/// Checks every stage of a multi-stage cascade.
pub fn lint_multistage(model: &MultiStageGcn, context: &'static str) -> LintReport {
    let mut report = LintReport::new();
    for stage in model.stages() {
        report.merge(lint_gcn(stage, context));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::GcnConfig;
    use gcnt_nn::seeded_rng;

    fn fresh_gcn() -> Gcn {
        Gcn::new(&GcnConfig::with_depth(2), &mut seeded_rng(0))
    }

    #[test]
    fn fresh_model_is_clean() {
        let report = lint_gcn(&fresh_gcn(), "test");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn nan_weight_fires_md001() {
        let mut gcn = fresh_gcn();
        gcn.params_mut()[1][3] = f32::NAN; // params[1] = first encoder weight
        let report = lint_gcn(&gcn, "test");
        assert!(report.fired(RuleId::WeightNan));
        assert!(report.has_errors());
    }

    #[test]
    fn nan_agg_weight_fires_md001() {
        let mut gcn = fresh_gcn();
        gcn.params_mut()[0][0] = f32::INFINITY; // params[0] = [w_pr, w_su]
        let report = lint_gcn(&gcn, "test");
        assert!(report.fired(RuleId::WeightNan));
    }

    fn field_mut<'v>(val: &'v mut serde_json::Value, name: &str) -> &'v mut serde_json::Value {
        match val {
            serde_json::Value::Object(fields) => fields
                .iter_mut()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .expect("field present"),
            _ => panic!("expected a JSON object"),
        }
    }

    #[test]
    fn mismatched_checkpoint_fires_md002() {
        // Splice two differently-sized models together via JSON, the way a
        // bad checkpoint merge would.
        let a = serde_json::to_string(&fresh_gcn()).unwrap();
        let b = serde_json::to_string(&Gcn::new(&GcnConfig::with_depth(1), &mut seeded_rng(1)))
            .unwrap();
        let mut a_val: serde_json::Value = a.parse().unwrap();
        let mut b_val: serde_json::Value = b.parse().unwrap();
        // Give the depth-1 model (32-feature embeddings) the depth-2 head
        // (expects 64 features).
        let head = field_mut(&mut a_val, "head").clone();
        *field_mut(&mut b_val, "head") = head;
        let spliced: Gcn = serde_json::from_str(&b_val.render()).unwrap();
        let report = lint_gcn(&spliced, "test");
        assert!(report.fired(RuleId::LayerShapeMismatch), "{report}");
    }

    #[test]
    fn mlp_chain_break_fires_md002() {
        let mut rng = seeded_rng(2);
        let good = Mlp::new(&[4, 8, 2], &mut rng);
        assert!(lint_mlp(&good, "test").is_clean());
        // Mismatched chain built through JSON (the public API cannot
        // construct one).
        let json = serde_json::to_string(&good).unwrap();
        let mut val: serde_json::Value = json.parse().unwrap();
        let extra = serde_json::to_string(&Linear::new(3, 2, &mut rng)).unwrap();
        let extra_val: serde_json::Value = extra.parse().unwrap();
        match field_mut(&mut val, "layers") {
            serde_json::Value::Array(layers) => layers.push(extra_val), // fan_in 3 after fan_out 2
            _ => panic!("mlp serialises layers as an array"),
        }
        let bad: Mlp = serde_json::from_str(&val.render()).unwrap();
        let report = lint_mlp(&bad, "test");
        assert!(report.fired(RuleId::LayerShapeMismatch), "{report}");
    }

    #[test]
    fn nan_bias_fires_md001_on_linear() {
        let mut rng = seeded_rng(3);
        let mut layer = Linear::new(3, 2, &mut rng);
        assert!(lint_linear(&layer, "test").is_clean());
        layer.params_mut()[1][0] = f32::NAN; // params[1] = bias
        let report = lint_linear(&layer, "test");
        assert!(report.fired(RuleId::WeightNan));
    }
}
