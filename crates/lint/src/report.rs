//! Lint report types: severities, rule identifiers, findings, and the
//! machine-readable [`LintReport`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::registry;

/// Severity of a lint finding.
///
/// Ordered: `Info < Warning < Error`, so `max()` over findings yields the
/// worst severity of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not necessarily wrong; does not fail a lint run.
    Warning,
    /// A hard invariant violation; fails the lint run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of a lint rule.
///
/// Every rule has a fixed code (`NL001`, `TS002`, ...) and slug
/// (`combinational-cycle`, ...) that external tooling can rely on; see
/// [`crate::registry::RULES`] for the full catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `NL001 combinational-cycle`: the combinational logic (with DFFs
    /// cut) contains a cycle.
    CombinationalCycle,
    /// `NL002 bad-arity`: a cell's fanin count violates its kind's arity
    /// bounds, or an `Output` marker drives fanout.
    BadArity,
    /// `NL003 dangling-net`: a non-pseudo-output node drives nothing.
    DanglingNet,
    /// `NL004 floating-input`: a node that requires inputs has none.
    FloatingInput,
    /// `NL005 level-monotonicity`: a stored logic-level assignment is
    /// inconsistent with the graph (level != 1 + max fanin level).
    LevelMonotonicity,
    /// `NL006 scoap-range`: a SCOAP measure is outside its legal range.
    ScoapRange,
    /// `TS001 adjacency-netlist-mismatch`: graph tensors disagree with the
    /// netlist they were built from.
    AdjacencyNetlistMismatch,
    /// `TS002 csr-sorted-indices`: malformed sparse-matrix structure
    /// (unsorted/duplicate/out-of-bounds indices, broken indptr).
    CsrSortedIndices,
    /// `TS003 nan-or-inf-value`: a sparse-matrix value is NaN or infinite.
    NanOrInfValue,
    /// `MD001 weight-nan`: a model parameter is NaN or infinite.
    WeightNan,
    /// `MD002 layer-shape-mismatch`: adjacent model layers have
    /// incompatible shapes.
    LayerShapeMismatch,
    /// `CK001 checkpoint-checksum-mismatch`: a checkpoint's stored
    /// checksum disagrees with the checksum of its payload.
    ChecksumMismatch,
    /// `CK002 checkpoint-version-unsupported`: a checkpoint declares a
    /// format version this build does not understand.
    UnsupportedVersion,
    /// `CK003 checkpoint-missing-state`: a checkpoint lacks state the
    /// resume path needs (e.g. optimizer velocity for a momentum run).
    MissingState,
    /// `EC001 embedding-cache-consistency`: an incremental-inference
    /// embedding cache disagrees with its graph (layer row counts differ
    /// from the node count, or the generations do not match).
    EmbeddingCacheConsistency,
    /// `JN001 journal-record-checksum-mismatch`: a write-ahead journal
    /// record's stored checksum disagrees with its payload.
    JournalChecksumMismatch,
    /// `JN002 journal-sequence-gap`: write-ahead journal records are not
    /// consecutively numbered from zero (a record was lost or reordered).
    JournalSequenceGap,
    /// `JN003 journal-growth-cap`: a write-ahead journal has outgrown its
    /// configured record-count or byte-size cap and should be compacted.
    JournalGrowthCap,
    /// `PG001 page-checksum-mismatch`: a committed store page fails its
    /// integrity check (bad magic, length out of range, or checksum
    /// mismatch).
    PageChecksumMismatch,
    /// `PG002 store-version-unsupported`: store metadata declares a
    /// format version this build does not read.
    StoreVersionUnsupported,
    /// `PG003 segment-page-missing`: a committed segment references a
    /// page index past the store's committed page count.
    SegmentPageMissing,
    /// `PT001 partition-consistency`: a partitioned adjacency violates
    /// its sharding invariants (non-covering boundaries, broken local
    /// indptr, column index outside its block and halo, unsorted halo
    /// table) or was built at a different graph generation/size.
    PartitionConsistency,
    /// `NT001 frame-envelope-broken`: a wire frame's envelope is
    /// malformed — bad magic, a declared payload length over the cap, or
    /// a payload whose checksum disagrees with the stored one.
    FrameEnvelopeBroken,
    /// `NT002 frame-version-unsupported`: a wire frame declares a
    /// protocol version this build does not speak.
    FrameVersionUnsupported,
}

impl RuleId {
    /// The stable rule code, e.g. `"NL001"`.
    pub fn code(self) -> &'static str {
        registry::rule(self).code
    }

    /// The stable rule slug, e.g. `"combinational-cycle"`.
    pub fn slug(self) -> &'static str {
        registry::rule(self).slug
    }

    /// The severity findings of this rule carry.
    pub fn severity(self) -> Severity {
        registry::rule(self).severity
    }

    /// Resolves a rule code (`"NL001"`) or slug back to its id.
    pub fn from_code(code: &str) -> Option<RuleId> {
        registry::RULES
            .iter()
            .find(|r| r.code == code || r.slug == code)
            .map(|r| r.id)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

// Rule ids serialize as their stable code so reports stay readable and
// stable across enum refactors.
impl Serialize for RuleId {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.code().to_string())
    }
}

impl Deserialize for RuleId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => RuleId::from_code(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown rule code `{s}`"))),
            _ => Err(serde::Error::custom("expected rule code string")),
        }
    }
}

/// A single lint finding: one rule violation at one place.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Severity, copied from the rule's registry entry.
    pub severity: Severity,
    /// Which artifact was being checked, e.g. `"netlist"`, `"tensors.pred"`,
    /// `"gcn.encoders[1]"`.
    pub context: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Creates a finding for `rule` with its registered severity.
    pub fn new(rule: RuleId, context: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            rule,
            severity: rule.severity(),
            context: context.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity,
            self.rule.code(),
            self.rule.slug(),
            self.context,
            self.message
        )
    }
}

/// A machine-readable collection of lint findings.
///
/// Reports render to human text via `Display` and to JSON via
/// [`LintReport::to_json`]; `serde` round-trips preserve every field.
///
/// # Examples
///
/// A netlist with a gate that has no drivers trips `NL004
/// floating-input`:
///
/// ```
/// use gcnt_lint::{lint_netlist, RuleId};
/// use gcnt_netlist::{CellKind, Netlist};
///
/// let mut net = Netlist::new("bad");
/// net.add_cell(CellKind::Not); // a NOT gate with no fanin
/// let report = lint_netlist(&net);
/// assert!(report.fired(RuleId::FloatingInput));
/// assert!(report.has_errors());
/// ```
///
/// Clean designs produce empty reports:
///
/// ```
/// use gcnt_lint::lint_design;
/// use gcnt_netlist::{generate, GeneratorConfig};
///
/// let net = generate(&GeneratorConfig::sized("ok", 8, 100));
/// let report = lint_design(&net);
/// assert!(report.is_clean(), "{report}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    findings: Vec<Finding>,
}

impl LintReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Adds a finding for `rule` with its registered severity.
    pub fn report(&mut self, rule: RuleId, context: impl Into<String>, message: impl Into<String>) {
        self.push(Finding::new(rule, context, message));
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }

    /// All findings, in the order they were recorded.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Whether no findings were recorded at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether any `Error`-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the given rule fired at least once.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.findings.iter().any(|f| f.rule == rule)
    }

    /// Findings of one rule.
    pub fn of_rule(&self, rule: RuleId) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Serializes the report to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn rule_codes_resolve_both_ways() {
        for desc in registry::RULES {
            assert_eq!(RuleId::from_code(desc.code), Some(desc.id));
            assert_eq!(RuleId::from_code(desc.slug), Some(desc.id));
            assert_eq!(desc.id.code(), desc.code);
        }
        assert_eq!(RuleId::from_code("XX999"), None);
    }

    #[test]
    fn report_counts_and_queries() {
        let mut report = LintReport::new();
        assert!(report.is_clean());
        report.report(RuleId::DanglingNet, "netlist", "node 3 drives nothing");
        report.report(RuleId::CombinationalCycle, "netlist", "cycle at node 5");
        assert!(!report.is_clean());
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Warning), 1);
        assert!(report.fired(RuleId::DanglingNet));
        assert!(!report.fired(RuleId::WeightNan));
        assert_eq!(report.of_rule(RuleId::CombinationalCycle).count(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = LintReport::new();
        report.report(RuleId::ScoapRange, "scoap", "cc0 out of range at node 2");
        let json = report.to_json();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.findings().len(), 1);
        assert_eq!(back.findings()[0].rule, RuleId::ScoapRange);
        assert_eq!(back.findings()[0].severity, Severity::Error);
        assert!(json.contains("NL006"));
    }

    #[test]
    fn display_renders_summary_line() {
        let mut report = LintReport::new();
        report.report(RuleId::WeightNan, "gcn", "w_pr is NaN");
        let text = report.to_string();
        assert!(text.contains("MD001"));
        assert!(text.contains("1 error(s)"));
        assert!(LintReport::new().to_string().contains("no findings"));
    }
}
