//! `PT` rules: partitioned-adjacency consistency.
//!
//! The partition-parallel SpMM (`gcnt_tensor::PartitionedCsr`) relies on
//! structural invariants — covering monotone row boundaries, per-block
//! local `indptr` arenas, remapped column encodings, sorted halo tables —
//! that, if violated, produce *wrong embeddings* rather than a crash: a
//! halo index past its table silently reads another block's scratch.
//! `PT001` re-validates the sharded form against itself and against the
//! graph it claims to shard, the same post-insertion checkpoint at which
//! `EC001` validates embedding caches.

use gcnt_core::{GraphTensors, PartitionedGraph};
use gcnt_tensor::PartitionedCsr;

use crate::report::{LintReport, RuleId};

/// `PT001 partition-consistency`: structural invariants of one sharded
/// CSR matrix. Checks that the partition boundaries cover `0..rows`
/// monotonically, every block's local `indptr` starts at zero, is
/// monotone and ends at the block's nnz, every remapped column index
/// either lands inside its own block or inside the block's halo table,
/// and every halo table is strictly sorted with only out-of-block
/// global columns.
pub fn lint_partitioned_csr(csr: &PartitionedCsr, context: &str) -> LintReport {
    let mut report = LintReport::new();
    let rows = csr.rows();
    let cols = csr.cols();
    let starts = csr.starts();
    if starts.first().copied() != Some(0) || starts.last().copied() != Some(rows) {
        report.report(
            RuleId::PartitionConsistency,
            context,
            format!("partition boundaries do not cover rows 0..{rows}"),
        );
    }
    if starts.iter().zip(starts.iter().skip(1)).any(|(a, b)| a > b) {
        report.report(
            RuleId::PartitionConsistency,
            context,
            "partition boundaries are not monotone non-decreasing",
        );
    }
    for p in 0..csr.partitions() {
        let range = csr.partition_rows(p);
        let nnz_lo = csr.nnz_starts().get(p).copied().unwrap_or(0);
        let nnz_hi = csr.nnz_starts().get(p + 1).copied().unwrap_or(nnz_lo);
        let block_nnz = nnz_hi.saturating_sub(nnz_lo);
        let ip = csr
            .indptr()
            .get(range.start + p..range.end + p + 1)
            .unwrap_or(&[]);
        let ends_at_nnz = ip.last().map(|&e| e as usize) == Some(block_nnz);
        if ip.first().copied() != Some(0) || !ends_at_nnz {
            report.report(
                RuleId::PartitionConsistency,
                context,
                format!("block {p} local indptr does not span 0..{block_nnz}"),
            );
        }
        if ip.iter().zip(ip.iter().skip(1)).any(|(a, b)| a > b) {
            report.report(
                RuleId::PartitionConsistency,
                context,
                format!("block {p} local indptr is not monotone"),
            );
        }
        let halo_lo = csr.halo_starts().get(p).copied().unwrap_or(0);
        let halo_hi = csr.halo_starts().get(p + 1).copied().unwrap_or(halo_lo);
        let halo = csr.halo_cols().get(halo_lo..halo_hi).unwrap_or(&[]);
        let bad_cols = csr
            .indices()
            .get(nnz_lo..nnz_hi)
            .unwrap_or(&[])
            .iter()
            .filter(|&&c| {
                let c = c as usize;
                if c < cols {
                    !range.contains(&c)
                } else {
                    c - cols >= halo.len()
                }
            })
            .count();
        if bad_cols > 0 {
            report.report(
                RuleId::PartitionConsistency,
                context,
                format!("block {p} holds {bad_cols} column index(es) outside its rows and halo"),
            );
        }
        if halo.iter().zip(halo.iter().skip(1)).any(|(a, b)| a >= b) {
            report.report(
                RuleId::PartitionConsistency,
                context,
                format!("block {p} halo table is not strictly sorted"),
            );
        }
        let bad_halo = halo
            .iter()
            .filter(|&&h| {
                let h = h as usize;
                h >= cols || range.contains(&h)
            })
            .count();
        if bad_halo > 0 {
            report.report(
                RuleId::PartitionConsistency,
                context,
                format!("block {p} halo table holds {bad_halo} in-block or out-of-range column(s)"),
            );
        }
    }
    report
}

/// `PT001` over a whole partitioned graph: both sharded adjacencies, the
/// shared-plan invariant (pred and succ must agree on boundaries so a
/// partition owns the same node range in either direction), and
/// freshness against the graph's generation and node count — a
/// partitioning that lags an insertion would silently aggregate without
/// the new node.
pub fn lint_partitioned_graph(
    tensors: &GraphTensors,
    pg: &PartitionedGraph,
    context: &str,
) -> LintReport {
    let mut report = lint_partitioned_csr(pg.pred(), &format!("{context}.pred"));
    report.merge(lint_partitioned_csr(pg.succ(), &format!("{context}.succ")));
    if pg.pred().starts() != pg.succ().starts() {
        report.report(
            RuleId::PartitionConsistency,
            context,
            "pred and succ partitions disagree on row boundaries (shared-plan violation)",
        );
    }
    if pg.generation() != tensors.generation() {
        report.report(
            RuleId::PartitionConsistency,
            context,
            format!(
                "partitioning generation {} does not match graph generation {}",
                pg.generation(),
                tensors.generation()
            ),
        );
    }
    if pg.node_count() != tensors.node_count() {
        report.report(
            RuleId::PartitionConsistency,
            context,
            format!(
                "partitioning covers {} nodes but the graph has {}",
                pg.node_count(),
                tensors.node_count()
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{GraphData, MatrixBackend};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_tensor::PartitionedCsr;

    fn design() -> (gcnt_netlist::Netlist, GraphData) {
        let net = generate(&GeneratorConfig::sized("pt", 9, 160));
        let data = GraphData::from_netlist(&net, None).unwrap();
        (net, data)
    }

    #[test]
    fn fresh_partitioning_is_clean() {
        let (_, data) = design();
        for parts in [1usize, 3, 7] {
            let csr = PartitionedCsr::from_csr(data.tensors.pred(), parts).unwrap();
            let report = lint_partitioned_csr(&csr, "tensors.pred");
            assert!(report.is_clean(), "parts {parts}: {report}");
        }
        let backend = MatrixBackend::partitioned(&data.tensors, 4).unwrap();
        let pg = backend.partitioned_graph().expect("partitioned");
        let report = lint_partitioned_graph(&data.tensors, pg, "backend");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_partitioning_fires_pt001() {
        let (mut net, data) = design();
        let mut tensors = data.tensors.clone();
        let backend = MatrixBackend::partitioned(&tensors, 4).unwrap();
        let target = net
            .nodes()
            .find(|&v| !net.fanout(v).is_empty())
            .expect("generated design has internal nodes");
        let op = net.insert_observation_point(target).unwrap();
        tensors.insert_observation_point(target, op).unwrap();
        let pg = backend.partitioned_graph().expect("partitioned");
        let report = lint_partitioned_graph(&tensors, pg, "backend");
        assert!(report.fired(RuleId::PartitionConsistency));
        assert!(report.has_errors());
        // One generation finding plus one node-count finding.
        assert_eq!(report.of_rule(RuleId::PartitionConsistency).count(), 2);
        assert_eq!(RuleId::PartitionConsistency.code(), "PT001");
    }
}
