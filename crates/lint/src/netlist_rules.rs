//! Structural netlist rules (`NL...`): graph shape, logic levels, SCOAP
//! ranges.

use gcnt_netlist::{logic_levels, CellKind, Netlist, NetlistError, NodeId, Scoap, SCOAP_INF};

use crate::report::{LintReport, RuleId};

/// Cap on findings recorded per rule per run, so a systematically broken
/// artifact produces a readable report instead of thousands of lines.
pub(crate) const MAX_FINDINGS_PER_RULE: usize = 16;

pub(crate) struct Capped<'r> {
    report: &'r mut LintReport,
    rule: RuleId,
    context: &'static str,
    seen: usize,
}

impl<'r> Capped<'r> {
    pub(crate) fn new(report: &'r mut LintReport, rule: RuleId, context: &'static str) -> Self {
        Capped {
            report,
            rule,
            context,
            seen: 0,
        }
    }

    pub(crate) fn report(&mut self, message: impl Into<String>) {
        self.seen += 1;
        if self.seen <= MAX_FINDINGS_PER_RULE {
            self.report.report(self.rule, self.context, message);
        }
    }
}

impl Drop for Capped<'_> {
    fn drop(&mut self) {
        if self.seen > MAX_FINDINGS_PER_RULE {
            self.report.report(
                self.rule,
                self.context,
                format!(
                    "... and {} more finding(s) of this rule suppressed",
                    self.seen - MAX_FINDINGS_PER_RULE
                ),
            );
        }
    }
}

fn describe(net: &Netlist, v: NodeId) -> String {
    format!("node {} ({:?})", v.index(), net.kind(v))
}

/// Deep structural check of a netlist: fires `NL001` (combinational
/// cycle), `NL002` (bad arity), `NL003` (dangling net), and `NL004`
/// (floating input).
///
/// This subsumes [`Netlist::validate`] — everything `validate` rejects is
/// reported here with a rule id, plus the dangling-net warning that
/// `validate` does not check.
pub fn lint_netlist(net: &Netlist) -> LintReport {
    let mut report = LintReport::new();

    {
        let mut arity = Capped::new(&mut report, RuleId::BadArity, "netlist");
        for v in net.nodes() {
            let kind = net.kind(v);
            let (lo, hi) = kind.arity();
            let n = net.fanin(v).len();
            if n == 0 && lo > 0 {
                continue; // NL004's carve-out, reported below
            }
            if n < lo || n > hi {
                arity.report(format!(
                    "{} has {n} fanin(s), expected {}",
                    describe(net, v),
                    if hi == usize::MAX {
                        format!(">= {lo}")
                    } else if lo == hi {
                        format!("exactly {lo}")
                    } else {
                        format!("{lo}..={hi}")
                    }
                ));
            }
            if kind == CellKind::Output && !net.fanout(v).is_empty() {
                arity.report(format!(
                    "{} is an Output marker but drives {} sink(s)",
                    describe(net, v),
                    net.fanout(v).len()
                ));
            }
        }
    }

    {
        let mut floating = Capped::new(&mut report, RuleId::FloatingInput, "netlist");
        for v in net.nodes() {
            if net.fanin(v).is_empty() && net.kind(v).arity().0 > 0 {
                floating.report(format!("{} has no drivers", describe(net, v)));
            }
        }
    }

    {
        let mut dangling = Capped::new(&mut report, RuleId::DanglingNet, "netlist");
        for v in net.nodes() {
            if net.fanout(v).is_empty() && !net.kind(v).is_pseudo_output() {
                dangling.report(format!("{} drives nothing", describe(net, v)));
            }
        }
    }

    match net.topo_order() {
        Ok(_) => {}
        Err(NetlistError::CombinationalCycle { node }) => {
            report.report(
                RuleId::CombinationalCycle,
                "netlist",
                format!("combinational cycle through {}", describe(net, node)),
            );
        }
        Err(other) => {
            report.report(
                RuleId::CombinationalCycle,
                "netlist",
                format!("topological ordering failed: {other}"),
            );
        }
    }

    report
}

/// Checks a stored logic-level assignment against the netlist: fires
/// `NL005` when `levels[v] != 1 + max(levels[fanin(v)])` for a
/// non-pseudo-input node, or when a pseudo input's level is not 0.
///
/// The workspace feeds logic levels into the GCN feature matrix (`[LL,
/// C0, C1, O]`, paper §3.1); this rule catches level columns that went
/// stale after a graph edit or were corrupted on disk. Skipped (reporting
/// nothing) if the netlist is cyclic — `NL001` already covers that.
pub fn lint_levels(net: &Netlist, levels: &[u32]) -> LintReport {
    let mut report = LintReport::new();
    if levels.len() != net.node_count() {
        report.report(
            RuleId::LevelMonotonicity,
            "levels",
            format!(
                "level vector has {} entries for {} nodes",
                levels.len(),
                net.node_count()
            ),
        );
        return report;
    }
    if net.topo_order().is_err() {
        return report;
    }
    let mut capped = Capped::new(&mut report, RuleId::LevelMonotonicity, "levels");
    for v in net.nodes() {
        let got = levels[v.index()];
        if net.kind(v).is_pseudo_input() {
            if got != 0 {
                capped.report(format!(
                    "{} is a pseudo input but has level {got}, expected 0",
                    describe(net, v)
                ));
            }
            continue;
        }
        let expected = net
            .fanin(v)
            .iter()
            .map(|&u| levels[u.index()])
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        if got != expected {
            capped.report(format!(
                "{} has level {got}, expected {expected} (1 + max of fanin levels)",
                describe(net, v)
            ));
        }
    }
    drop(capped);
    report
}

/// Checks SCOAP measures against their legal ranges: fires `NL006` when
/// `cc0`/`cc1` leave `[1, SCOAP_INF]`, `co` exceeds `SCOAP_INF`, or a
/// pseudo input's controllabilities are not exactly 1.
pub fn lint_scoap(net: &Netlist, scoap: &Scoap) -> LintReport {
    let mut report = LintReport::new();
    if scoap.cc0_all().len() != net.node_count()
        || scoap.cc1_all().len() != net.node_count()
        || scoap.co_all().len() != net.node_count()
    {
        report.report(
            RuleId::ScoapRange,
            "scoap",
            format!(
                "SCOAP vectors sized {}/{}/{} for {} nodes",
                scoap.cc0_all().len(),
                scoap.cc1_all().len(),
                scoap.co_all().len(),
                net.node_count()
            ),
        );
        return report;
    }
    let mut capped = Capped::new(&mut report, RuleId::ScoapRange, "scoap");
    for v in net.nodes() {
        let (cc0, cc1, co) = (scoap.cc0(v), scoap.cc1(v), scoap.co(v));
        for (name, c) in [("cc0", cc0), ("cc1", cc1)] {
            if !(1..=SCOAP_INF).contains(&c) {
                capped.report(format!(
                    "{} has {name} = {c}, outside [1, {SCOAP_INF}]",
                    describe(net, v)
                ));
            }
        }
        if co > SCOAP_INF {
            capped.report(format!(
                "{} has co = {co}, above {SCOAP_INF}",
                describe(net, v)
            ));
        }
        if net.kind(v).is_pseudo_input() && (cc0 != 1 || cc1 != 1) {
            capped.report(format!(
                "{} is a pseudo input but has cc0/cc1 = {cc0}/{cc1}, expected 1/1",
                describe(net, v)
            ));
        }
    }
    drop(capped);
    report
}

/// Convenience wrapper: computes logic levels and SCOAP from the netlist
/// and lints them alongside the structure. Derived artifacts are only
/// linted when the structure itself is sound.
pub fn lint_netlist_deep(net: &Netlist) -> LintReport {
    let mut report = lint_netlist(net);
    if report.has_errors() {
        return report;
    }
    if let Ok(levels) = logic_levels(net) {
        report.merge(lint_levels(net, &levels));
    }
    if let Ok(scoap) = Scoap::compute(net) {
        report.merge(lint_scoap(net, &scoap));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, GeneratorConfig};

    fn clean_net() -> Netlist {
        generate(&GeneratorConfig::sized("clean", 6, 80))
    }

    #[test]
    fn clean_generated_netlist_has_no_findings() {
        let report = lint_netlist_deep(&clean_net());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn floating_input_fires_nl004_not_nl002() {
        let mut net = Netlist::new("floating");
        net.add_cell(CellKind::Not);
        let report = lint_netlist(&net);
        assert!(report.fired(RuleId::FloatingInput));
        assert!(!report.fired(RuleId::BadArity));
    }

    #[test]
    fn single_fanin_and_fires_nl002() {
        let mut net = Netlist::new("arity");
        let a = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g).unwrap();
        net.connect(g, o).unwrap();
        let report = lint_netlist(&net);
        assert!(report.fired(RuleId::BadArity));
    }

    #[test]
    fn unused_gate_fires_nl003_warning_only() {
        let mut net = Netlist::new("dangling");
        let a = net.add_cell(CellKind::Input);
        let b = net.add_cell(CellKind::Input);
        let g = net.add_cell(CellKind::And);
        net.connect(a, g).unwrap();
        net.connect(b, g).unwrap();
        let report = lint_netlist(&net);
        assert!(report.fired(RuleId::DanglingNet));
        assert!(!report.has_errors());
    }

    #[test]
    fn back_edge_fires_nl001() {
        let mut net = Netlist::new("cycle");
        let a = net.add_cell(CellKind::Input);
        let g1 = net.add_cell(CellKind::And);
        let g2 = net.add_cell(CellKind::And);
        let o = net.add_cell(CellKind::Output);
        net.connect(a, g1).unwrap();
        net.connect(g1, g2).unwrap();
        net.connect(g2, g1).unwrap(); // back edge
        net.connect(a, g2).unwrap();
        net.connect(g2, o).unwrap();
        let report = lint_netlist(&net);
        assert!(report.fired(RuleId::CombinationalCycle));
    }

    #[test]
    fn stale_levels_fire_nl005() {
        let net = clean_net();
        let mut levels = logic_levels(&net).unwrap();
        assert!(lint_levels(&net, &levels).is_clean());
        // Corrupt the level of some internal node.
        let gate = net
            .nodes()
            .find(|&v| !net.kind(v).is_pseudo_input())
            .unwrap();
        levels[gate.index()] += 7;
        let report = lint_levels(&net, &levels);
        assert!(report.fired(RuleId::LevelMonotonicity));
        // Wrong length is also NL005.
        let report = lint_levels(&net, &levels[1..]);
        assert!(report.fired(RuleId::LevelMonotonicity));
    }

    #[test]
    fn corrupt_scoap_fires_nl006() {
        let net = clean_net();
        let good = Scoap::compute(&net).unwrap();
        assert!(lint_scoap(&net, &good).is_clean());
        let mut cc0 = good.cc0_all().to_vec();
        let gate = net
            .nodes()
            .find(|&v| !net.kind(v).is_pseudo_input())
            .unwrap();
        cc0[gate.index()] = 0; // controllability below the legal minimum
        let bad = Scoap::from_raw_parts(cc0, good.cc1_all().to_vec(), good.co_all().to_vec());
        let report = lint_scoap(&net, &bad);
        assert!(report.fired(RuleId::ScoapRange));
    }

    #[test]
    fn findings_are_capped_per_rule() {
        let mut net = Netlist::new("many");
        for _ in 0..3 * MAX_FINDINGS_PER_RULE {
            net.add_cell(CellKind::Not);
        }
        let report = lint_netlist(&net);
        let floating = report.of_rule(RuleId::FloatingInput).count();
        assert_eq!(floating, MAX_FINDINGS_PER_RULE + 1); // findings + summary
    }
}
