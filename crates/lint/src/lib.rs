//! `gcnt-lint`: cross-crate static analysis for the GCN testability
//! workspace.
//!
//! The workspace moves data across three representation boundaries —
//! netlist graph → sparse adjacency tensors → model parameters — and a
//! corruption on any side (a stale tensor after an insertion, a NaN in a
//! checkpoint, an unsorted CSR row) surfaces far downstream as a wrong
//! prediction or a panic in a hot kernel. This crate checks the
//! invariants at each boundary and reports violations with stable rule
//! ids instead of panicking.
//!
//! # Rule catalogue
//!
//! | Code | Slug | Severity | Checks |
//! |------|------|----------|--------|
//! | `NL001` | `combinational-cycle` | error | acyclic combinational logic (DFFs cut) |
//! | `NL002` | `bad-arity` | error | fanin counts within each cell kind's bounds |
//! | `NL003` | `dangling-net` | warning | non-output nodes that drive nothing |
//! | `NL004` | `floating-input` | error | nodes that require drivers but have none |
//! | `NL005` | `level-monotonicity` | error | stored logic levels = 1 + max fanin level |
//! | `NL006` | `scoap-range` | error | SCOAP measures within their legal ranges |
//! | `TS001` | `adjacency-netlist-mismatch` | error | graph tensors mirror the netlist |
//! | `TS002` | `csr-sorted-indices` | error | CSR/COO structural invariants |
//! | `TS003` | `nan-or-inf-value` | error | finite sparse-matrix values |
//! | `MD001` | `weight-nan` | error | finite model parameters |
//! | `MD002` | `layer-shape-mismatch` | error | adjacent model layers chain |
//! | `CK001` | `checkpoint-checksum-mismatch` | error | checkpoint payload integrity |
//! | `CK002` | `checkpoint-version-unsupported` | error | checkpoint format version known |
//! | `CK003` | `checkpoint-missing-state` | error | resume state sections present |
//! | `EC001` | `embedding-cache-consistency` | error | incremental caches match their graph |
//! | `JN001` | `journal-record-checksum-mismatch` | error | journal record payload integrity |
//! | `JN002` | `journal-sequence-gap` | error | journal records consecutively numbered |
//! | `JN003` | `journal-growth-cap` | warning | journal within its record/byte caps |
//! | `PG001` | `page-checksum-mismatch` | error | store page integrity (magic/length/checksum) |
//! | `PG002` | `store-version-unsupported` | error | store metadata format version known |
//! | `PG003` | `segment-page-missing` | error | segment page refs within committed count |
//! | `PT001` | `partition-consistency` | error | sharded adjacency invariants and freshness |
//! | `NT001` | `frame-envelope-broken` | error | wire frame envelope integrity (magic/length-cap/checksum) |
//! | `NT002` | `frame-version-unsupported` | error | wire frame protocol version known |
//!
//! The catalogue is available programmatically via [`registry::RULES`].
//!
//! # Entry points
//!
//! - [`lint_netlist`] / [`lint_netlist_deep`] — graph structure, plus
//!   derived logic levels and SCOAP measures.
//! - [`lint_levels`] / [`lint_scoap`] — externally stored per-node
//!   vectors against the graph.
//! - [`lint_csr`] / [`lint_coo`] / [`lint_graph_tensors`] — sparse
//!   matrices, standalone or against their netlist.
//! - [`lint_linear`] / [`lint_mlp`] / [`lint_gcn`] / [`lint_multistage`]
//!   — model parameters, e.g. after loading a checkpoint.
//! - [`lint_checkpoint_meta`] / [`lint_optimizer_shape`] — checkpoint
//!   file metadata (checksum, version, required state sections).
//! - [`lint_journal_records`] / [`lint_journal_growth`] — a recovered
//!   write-ahead journal record stream, validated before a killed flow
//!   job is replayed, and the journal's size against configured caps.
//! - [`lint_frame`] — one wire-frame envelope (magic, length cap,
//!   payload checksum, protocol version), refused by the net layer
//!   before any payload byte is trusted.
//! - [`lint_store_pages`] / [`lint_store_segments`] /
//!   [`lint_store_version`] — paged-store integrity summaries, driven by
//!   `gcnt store scrub`.
//! - [`lint_embedding_cache`] / [`lint_embedding_caches`] — incremental
//!   inference caches against their graph, checked by the flow after
//!   every insertion batch.
//! - [`lint_partitioned_csr`] / [`lint_partitioned_graph`] — sharded
//!   adjacency invariants and freshness, checked alongside the caches
//!   when the flow runs on the partitioned backend.
//! - [`lint_design`] — everything derivable from a netlist in one call;
//!   this is what `gcnt lint` runs.
//!
//! # Examples
//!
//! ```
//! use gcnt_lint::{lint_design, RuleId, Severity};
//! use gcnt_netlist::{CellKind, Netlist};
//!
//! let mut net = Netlist::new("demo");
//! let a = net.add_cell(CellKind::Input);
//! let g = net.add_cell(CellKind::And); // needs >= 2 fanins, gets 1
//! let o = net.add_cell(CellKind::Output);
//! net.connect(a, g)?;
//! net.connect(g, o)?;
//!
//! let report = lint_design(&net);
//! assert!(report.fired(RuleId::BadArity));
//! assert_eq!(RuleId::BadArity.code(), "NL002");
//! assert!(report.count(Severity::Error) >= 1);
//! # Ok::<(), gcnt_netlist::NetlistError>(())
//! ```

pub mod registry;
pub mod report;

mod checkpoint_rules;
mod embedding_rules;
mod journal_rules;
mod model_rules;
mod net_rules;
mod netlist_rules;
mod page_rules;
mod partition_rules;
mod tensor_rules;

pub use checkpoint_rules::{lint_checkpoint_meta, lint_optimizer_shape, CheckpointMeta};
pub use embedding_rules::{lint_embedding_cache, lint_embedding_caches};
pub use journal_rules::{
    lint_journal_growth, lint_journal_records, JournalCaps, JournalRecordMeta,
};
pub use model_rules::{lint_gcn, lint_linear, lint_mlp, lint_multistage};
pub use net_rules::{lint_frame, FrameCaps, FrameMeta};
pub use netlist_rules::{lint_levels, lint_netlist, lint_netlist_deep, lint_scoap};
pub use page_rules::{
    lint_store_pages, lint_store_segments, lint_store_version, PageMeta, SegmentMeta,
};
pub use partition_rules::{lint_partitioned_csr, lint_partitioned_graph};
pub use report::{Finding, LintReport, RuleId, Severity};
pub use tensor_rules::{lint_coo, lint_csr, lint_graph_tensors};

use gcnt_core::GraphTensors;
use gcnt_netlist::Netlist;

/// Runs every netlist-derivable check: structure (`NL001`–`NL004`),
/// derived logic levels and SCOAP measures (`NL005`, `NL006`), and —
/// when the structure is sound — freshly built graph tensors
/// (`TS001`–`TS003`).
///
/// Derived artifacts are only linted on structurally sound netlists;
/// structural errors would make every downstream rule fire noisily for
/// the same root cause.
pub fn lint_design(net: &Netlist) -> LintReport {
    let mut report = lint_netlist_deep(net);
    if !report.has_errors() {
        let tensors = GraphTensors::from_netlist(net);
        report.merge(lint_graph_tensors(net, &tensors));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_netlist::{generate, CellKind, GeneratorConfig};

    #[test]
    fn lint_design_is_clean_on_generated_netlists() {
        for seed in ["a", "b", "c"] {
            let net = generate(&GeneratorConfig::sized(seed, 7, 90));
            let report = lint_design(&net);
            assert!(report.is_clean(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn lint_design_skips_derived_checks_on_broken_structure() {
        let mut net = Netlist::new("broken");
        net.add_cell(CellKind::Not); // floating input
        let report = lint_design(&net);
        assert!(report.fired(RuleId::FloatingInput));
        // No TS/NL005/NL006 noise from the same root cause.
        assert!(!report.fired(RuleId::AdjacencyNetlistMismatch));
        assert!(!report.fired(RuleId::LevelMonotonicity));
    }

    #[test]
    fn every_rule_id_round_trips_through_the_registry() {
        for desc in registry::RULES {
            assert_eq!(RuleId::from_code(desc.code), Some(desc.id));
        }
    }
}
