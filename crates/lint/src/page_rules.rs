//! Paged-store rules: `PG001` page integrity, `PG002` format version,
//! `PG003` segment page references.
//!
//! The store crate owns the page *format*; this module only sees plain
//! [`PageMeta`] / [`SegmentMeta`] summaries (mirroring how
//! [`crate::CheckpointMeta`] and [`crate::JournalRecordMeta`] keep the
//! linter free of runtime types), so `gcnt store scrub` can report every
//! damaged page instead of stopping at the first typed error.

use crate::report::{LintReport, RuleId};

/// Format-level facts about one committed store page, as observed by
/// whoever decoded the data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    /// Page index in the data file.
    pub index: u64,
    /// Checksum the page header stores (hex), or a marker when the
    /// header itself is unreadable.
    pub stored_checksum: String,
    /// Checksum recomputed over the page payload (hex), or the decode
    /// failure description when the page is unreadable.
    pub computed_checksum: String,
}

/// Format-level facts about one committed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Display name of the segment (design/kind/generation/range).
    pub name: String,
    /// Page indices the segment claims to live in.
    pub pages: Vec<u64>,
}

/// Checks decoded pages: `PG001` fires per page whose stored checksum
/// disagrees with its payload (or whose header failed to decode at all).
///
/// `path` names the data file in the findings' context.
pub fn lint_store_pages(path: &str, pages: &[PageMeta]) -> LintReport {
    let mut report = LintReport::new();
    for page in pages {
        if page.stored_checksum != page.computed_checksum {
            report.report(
                RuleId::PageChecksumMismatch,
                path,
                format!(
                    "page {} stores checksum {} but verification found: {}",
                    page.index, page.stored_checksum, page.computed_checksum
                ),
            );
        }
    }
    report
}

/// Checks segment directory references: `PG003` fires per segment that
/// claims a page at or past the committed page count — bytes the
/// metadata vouches for that the data file cannot hold.
pub fn lint_store_segments(path: &str, segments: &[SegmentMeta], page_count: u64) -> LintReport {
    let mut report = LintReport::new();
    for seg in segments {
        for &idx in &seg.pages {
            if idx >= page_count {
                report.report(
                    RuleId::SegmentPageMissing,
                    path,
                    format!(
                        "segment `{}` references page {idx} but only {page_count} pages are committed",
                        seg.name
                    ),
                );
            }
        }
    }
    report
}

/// Checks the store metadata format version: `PG002` fires when it is
/// not the supported one.
pub fn lint_store_version(path: &str, version: u32, supported: u32) -> LintReport {
    let mut report = LintReport::new();
    if version != supported {
        report.report(
            RuleId::StoreVersionUnsupported,
            path,
            format!("store declares format version {version}; this build reads {supported}"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(index: u64, stored: &str, computed: &str) -> PageMeta {
        PageMeta {
            index,
            stored_checksum: stored.to_string(),
            computed_checksum: computed.to_string(),
        }
    }

    #[test]
    fn clean_pages_and_segments_yield_empty_reports() {
        let pages = vec![page(0, "aa", "aa"), page(1, "bb", "bb")];
        assert!(lint_store_pages("pages.dat", &pages).is_clean());
        let segs = vec![SegmentMeta {
            name: "d/netlist@g0[0..10]".to_string(),
            pages: vec![0, 1],
        }];
        assert!(lint_store_segments("pages.dat", &segs, 2).is_clean());
        assert!(lint_store_version("store.json", 1, 1).is_clean());
    }

    #[test]
    fn corrupt_page_fires_pg001() {
        let pages = vec![page(0, "aa", "aa"), page(1, "bb", "checksum mismatch")];
        let report = lint_store_pages("pages.dat", &pages);
        assert_eq!(report.of_rule(RuleId::PageChecksumMismatch).count(), 1);
        assert!(report.has_errors());
        assert_eq!(RuleId::PageChecksumMismatch.code(), "PG001");
    }

    #[test]
    fn dangling_segment_reference_fires_pg003() {
        let segs = vec![SegmentMeta {
            name: "d/embed@g2[0..100]".to_string(),
            pages: vec![1, 7],
        }];
        let report = lint_store_segments("pages.dat", &segs, 2);
        assert_eq!(report.of_rule(RuleId::SegmentPageMissing).count(), 1);
        assert_eq!(RuleId::SegmentPageMissing.code(), "PG003");
    }

    #[test]
    fn foreign_version_fires_pg002() {
        let report = lint_store_version("store.json", 9, 1);
        assert!(report.fired(RuleId::StoreVersionUnsupported));
        assert_eq!(RuleId::StoreVersionUnsupported.code(), "PG002");
    }
}
