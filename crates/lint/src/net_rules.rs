//! Wire-frame rules: `NT001` envelope integrity, `NT002` protocol
//! version support.
//!
//! The net crate owns the frame *format*; this module only sees a plain
//! [`FrameMeta`] summary per decoded envelope (mirroring how
//! [`crate::JournalRecordMeta`] keeps the linter free of serve types), so
//! any transport consumer can validate a frame before trusting its
//! payload. A frame that fails here must be *refused*, never decoded:
//! after a framing error the byte stream cannot be resynchronised.

use crate::report::{LintReport, RuleId};

/// Format-level facts about one wire frame, as observed by whoever
/// parsed the envelope bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    /// Whether the envelope starts with the protocol magic.
    pub magic_ok: bool,
    /// Protocol version the envelope declares.
    pub version: u32,
    /// Payload length the envelope declares, in bytes.
    pub declared_len: u64,
    /// Checksum stored in the envelope (hex).
    pub stored_checksum: String,
    /// Checksum recomputed over the payload bytes (hex); empty when the
    /// payload was never read (e.g. the declared length already failed).
    pub computed_checksum: String,
}

/// Envelope limits the receiver enforces. `supported_version` is the one
/// protocol version this build speaks; `max_payload_bytes` caps the
/// declared length so a corrupt or hostile length prefix cannot drive an
/// unbounded allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCaps {
    /// The single protocol version this build accepts.
    pub supported_version: u32,
    /// Maximum payload bytes a frame may declare.
    pub max_payload_bytes: u64,
}

/// Checks one wire frame: `NT001` fires on a broken envelope (bad magic,
/// declared length over the cap, or a payload that hashes differently
/// from the stored checksum), `NT002` fires when the declared protocol
/// version is not the supported one.
///
/// `context` names the connection or capture in the findings. An empty
/// `computed_checksum` skips the checksum comparison — the caller
/// refused to read the payload, which an earlier finding explains.
pub fn lint_frame(context: &str, meta: &FrameMeta, caps: &FrameCaps) -> LintReport {
    let mut report = LintReport::new();
    if !meta.magic_ok {
        report.report(
            RuleId::FrameEnvelopeBroken,
            context,
            "frame does not start with the protocol magic".to_string(),
        );
    }
    if meta.declared_len > caps.max_payload_bytes {
        report.report(
            RuleId::FrameEnvelopeBroken,
            context,
            format!(
                "frame declares a {}-byte payload, over the {}-byte cap",
                meta.declared_len, caps.max_payload_bytes
            ),
        );
    }
    if !meta.computed_checksum.is_empty() && meta.stored_checksum != meta.computed_checksum {
        report.report(
            RuleId::FrameEnvelopeBroken,
            context,
            format!(
                "frame stores checksum {} but its payload hashes to {}",
                meta.stored_checksum, meta.computed_checksum
            ),
        );
    }
    if meta.version != caps.supported_version {
        report.report(
            RuleId::FrameVersionUnsupported,
            context,
            format!(
                "frame declares protocol version {}, this build speaks {}",
                meta.version, caps.supported_version
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> FrameCaps {
        FrameCaps {
            supported_version: 1,
            max_payload_bytes: 1024,
        }
    }

    fn clean_meta() -> FrameMeta {
        FrameMeta {
            magic_ok: true,
            version: 1,
            declared_len: 64,
            stored_checksum: "00000000deadbeef".to_string(),
            computed_checksum: "00000000deadbeef".to_string(),
        }
    }

    #[test]
    fn clean_frame_yields_empty_report() {
        assert!(lint_frame("conn", &clean_meta(), &caps()).is_clean());
    }

    #[test]
    fn broken_envelope_fires_nt001() {
        let mut bad_magic = clean_meta();
        bad_magic.magic_ok = false;
        let report = lint_frame("conn", &bad_magic, &caps());
        assert!(report.fired(RuleId::FrameEnvelopeBroken));
        assert!(report.has_errors());
        assert_eq!(RuleId::FrameEnvelopeBroken.code(), "NT001");

        let mut over_cap = clean_meta();
        over_cap.declared_len = 2048;
        assert!(lint_frame("conn", &over_cap, &caps()).fired(RuleId::FrameEnvelopeBroken));

        let mut corrupt = clean_meta();
        corrupt.computed_checksum = "0badf00d0badf00d".to_string();
        assert!(lint_frame("conn", &corrupt, &caps()).fired(RuleId::FrameEnvelopeBroken));
    }

    #[test]
    fn unread_payload_skips_checksum_comparison() {
        let mut meta = clean_meta();
        meta.declared_len = 4096;
        meta.computed_checksum = String::new();
        let report = lint_frame("conn", &meta, &caps());
        // Only the length-cap finding — no checksum noise for a payload
        // that was never read.
        assert_eq!(report.of_rule(RuleId::FrameEnvelopeBroken).count(), 1);
    }

    #[test]
    fn wrong_version_fires_nt002() {
        let mut meta = clean_meta();
        meta.version = 9;
        let report = lint_frame("conn", &meta, &caps());
        assert!(report.fired(RuleId::FrameVersionUnsupported));
        assert!(!report.fired(RuleId::FrameEnvelopeBroken));
        assert_eq!(RuleId::FrameVersionUnsupported.code(), "NT002");
    }
}
