//! `gcnt-serve`: a long-lived inference/flow service over the GCN
//! testability stack, built for graceful degradation rather than graceful
//! failure.
//!
//! A testability service sits in a physical-design loop: other tools
//! submit designs, wait for difficult-to-observe scores or a finished
//! observation-point insertion, and retry on failure. That shape makes
//! four failure modes routine — request storms, blown deadlines, stale
//! incremental caches, and killed processes mid-flow — and this crate
//! turns each into a typed, tested behaviour:
//!
//! * **Bounded admission** ([`queue`], [`ServeHandle`]): a fixed-capacity
//!   request queue; a full (or fault-saturated) queue rejects immediately
//!   with [`ServeError::Overloaded`] instead of growing an unbounded
//!   backlog.
//! * **Deadlines and cancellation** ([`ServeCore`]): each request gets a
//!   deterministic work budget in embedding-row units
//!   ([`gcnt_tensor::Budget`]), checked cooperatively between GCN layers
//!   and flow iterations; [`gcnt_tensor::Cancel`] aborts from another
//!   thread. Retries with exponential backoff and a count-based circuit
//!   breaker ([`breaker`]) guard model/design (re)loading.
//! * **A degradation ladder** ([`ladder`]): incremental session → full
//!   sparse inference → first-cascade-stage-only scoring, stepped down on
//!   budget stops and stale/poisoned caches; the response names the rung
//!   that answered. The bottom rung runs unbudgeted, so every admitted
//!   request completes.
//! * **Write-ahead journaled flow jobs** ([`journal`]): one checksummed,
//!   fsynced record per committed insertion batch; a killed process
//!   resumes to a bit-identical [`gcnt_dft::flow::FlowOutcome`], with
//!   torn tails healed and real corruption refused (`JN001`/`JN002`).
//! * **Store-backed durability** ([`store`], opt-in via
//!   [`ServeCore::with_store`]): journals compact into a checksummed
//!   [`gcnt_store::PageStore`] (bounding on-disk growth, `JN003`), and
//!   incremental answers persist their per-layer embeddings so a warm
//!   restart reloads pages instead of recomputing — bit-identical either
//!   way, with corrupt pages quarantined and recomputed.
//!
//! Fault injection ([`gcnt_runtime::FaultPlan`], `fault-inject` feature)
//! drives all of it deterministically: injected latency, queue
//! saturation, stale-cache poisoning, kill-after-journal-record,
//! store disk-full, and kill-mid-compaction.
//!
//! # Example
//!
//! ```
//! use gcnt_core::{Gcn, GcnConfig, GraphData, MultiStageGcn};
//! use gcnt_netlist::{generate, GeneratorConfig};
//! use gcnt_serve::{Rung, ServeConfig, ServeCore, ServeHandle};
//!
//! let net = generate(&GeneratorConfig::sized("demo", 1, 120));
//! let data = GraphData::from_netlist(&net, None).expect("generated design is well-formed");
//! let cfg = GcnConfig { embed_dims: vec![4], fc_dims: vec![4], ..GcnConfig::default() };
//! let model = MultiStageGcn::from_stages(
//!     vec![Gcn::new(&cfg, &mut gcnt_nn::seeded_rng(1))],
//!     0.5,
//! );
//!
//! let core = ServeCore::new(data.normalizer, model, ServeConfig::default());
//! let handle = ServeHandle::start(core)?;
//! let resp = handle.infer(net, None)?;
//! assert_eq!(resp.rung, Rung::Incremental); // no pressure, no degradation
//! # Ok::<(), gcnt_serve::ServeError>(())
//! ```

pub mod breaker;
pub mod error;
pub mod journal;
pub mod ladder;
pub mod queue;
pub mod server;
pub mod store;

pub use breaker::{BreakerConfig, CircuitBreaker, RetryPolicy};
pub use error::ServeError;
pub use journal::{FlowJournal, JournalHeader, Recovered, JOURNAL_SEGMENT_KIND, JOURNAL_VERSION};
pub use ladder::{
    classify_with_ladder, classify_with_ladder_backed, classify_with_ladder_sessioned,
    LadderResult, Rung, RungDrop,
};
pub use queue::BoundedQueue;
pub use server::{
    FlowJobResult, FlowResponse, InferResponse, ServeConfig, ServeCore, ServeHandle, Ticket,
};
pub use store::{design_fingerprint, JobStore, StorePolicy};
