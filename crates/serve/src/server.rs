//! The service itself: a synchronous [`ServeCore`] that answers one
//! request at a time, and a worker-thread [`ServeHandle`] that puts a
//! bounded queue with admission control in front of it.
//!
//! The split keeps every robustness mechanism testable without threads:
//! the core owns deadlines (as [`Budget`] caps), the degradation ladder,
//! the write-ahead journal of flow jobs, and the retry/breaker guard
//! around model reloading; the handle owns only admission and dispatch.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;

use gcnt_core::{
    features::FeatureNormalizer, CascadeSession, GraphData, MatrixBackend, MultiStageGcn,
};
use gcnt_dft::flow::{run_gcn_opi_resumable, FlowConfig, FlowError, FlowOutcome};
use gcnt_netlist::Netlist;
use gcnt_runtime::FaultPlan;
use gcnt_tensor::Budget;

use crate::breaker::{BreakerConfig, CircuitBreaker, RetryPolicy};
use crate::error::ServeError;
use crate::journal::{FlowJournal, JournalHeader};
use crate::ladder::{classify_with_ladder_backed, LadderResult, Rung, RungDrop};
use crate::queue::BoundedQueue;
use crate::store::{design_fingerprint, JobStore};

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Pending requests the bounded queue holds before admission control
    /// rejects with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not bring their own, in
    /// embedding-row units; `None` = unlimited.
    pub default_deadline: Option<u64>,
    /// Probability at or above which a node counts as a positive in
    /// [`InferResponse::positives`].
    pub prob_threshold: f32,
    /// Retry policy for model/design (re)loading.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds for model/design (re)loading.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 8,
            default_deadline: None,
            prob_threshold: 0.5,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Answer to an inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Positive-class probability per node.
    pub probs: Vec<f32>,
    /// Nodes at or above [`ServeConfig::prob_threshold`].
    pub positives: usize,
    /// The degradation-ladder rung that produced the answer.
    pub rung: Rung,
    /// Rungs abandoned under deadline pressure or cache faults, top-down.
    pub dropped: Vec<RungDrop>,
    /// Embedding-row units of work spent (after any injected latency
    /// multiplier).
    pub spent: u64,
    /// This request's admission index (0-based, per core).
    pub admission_index: u64,
    /// Embedding rows restored from the page store instead of being
    /// recomputed; 0 on a cold (or storeless) answer.
    pub warm_rows: u64,
}

/// Answer to a journaled flow job.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResponse {
    /// The flow's outcome — bit-identical whether or not the job was
    /// resumed from a journal.
    pub outcome: FlowOutcome,
    /// Batches replayed from the journal before new work started.
    pub resumed_batches: usize,
    /// Records in the journal when the job finished.
    pub journal_records: u64,
    /// Whether recovery discarded a torn (half-written) final record.
    pub recovered_torn_tail: bool,
}

/// The synchronous serving core: model, normaliser, fault plan, and the
/// robustness machinery around them.
pub struct ServeCore {
    model: MultiStageGcn,
    normalizer: FeatureNormalizer,
    config: ServeConfig,
    plan: FaultPlan,
    breaker: CircuitBreaker,
    admitted: u64,
    store: Option<JobStore>,
}

impl ServeCore {
    /// A core around an already-loaded model.
    pub fn new(normalizer: FeatureNormalizer, model: MultiStageGcn, config: ServeConfig) -> Self {
        ServeCore {
            model,
            normalizer,
            breaker: CircuitBreaker::new(config.breaker),
            config,
            plan: FaultPlan::none(),
            admitted: 0,
            store: None,
        }
    }

    /// A core whose initial model load runs under the retry policy (a
    /// fresh breaker cannot be open yet).
    ///
    /// # Errors
    ///
    /// [`ServeError::Load`] if the loader still fails after retries.
    pub fn load(
        config: ServeConfig,
        loader: impl FnMut() -> Result<(FeatureNormalizer, MultiStageGcn), String>,
    ) -> Result<Self, ServeError> {
        let (normalizer, model) = config.retry.run(loader)?;
        Ok(ServeCore::new(normalizer, model, config))
    }

    /// Attaches a fault plan (deterministic injection; a no-op plan
    /// without the `fault-inject` feature).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self.sync_store_faults();
        self
    }

    /// Attaches a page store: flow journals compact into it (bounding
    /// on-disk journal growth) and incremental answers persist their
    /// embedding pages so a restarted core reloads instead of recomputes.
    pub fn with_store(mut self, store: JobStore) -> Self {
        self.store = Some(store);
        self.sync_store_faults();
        self
    }

    /// Pushes the fault plan's store faults (disk-full) into the
    /// attached page store. Called from both builders so either order of
    /// `with_faults`/`with_store` injects them.
    fn sync_store_faults(&mut self) {
        #[cfg(feature = "fault-inject")]
        if let (Some(n), Some(js)) = (self.plan.store_disk_full_after(), self.store.as_mut()) {
            js.store_mut()
                .set_faults(gcnt_store::StoreFaults::none().with_disk_full_after(n));
        }
    }

    /// The attached page store, if any.
    pub fn store(&self) -> Option<&JobStore> {
        self.store.as_ref()
    }

    /// Mutable access to the attached page store, if any.
    pub fn store_mut(&mut self) -> Option<&mut JobStore> {
        self.store.as_mut()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The model currently served.
    pub fn model(&self) -> &MultiStageGcn {
        &self.model
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Whether the fault plan saturates admission control.
    pub(crate) fn queue_saturated(&self) -> bool {
        self.plan.queue_saturated()
    }

    /// Swaps in a new model/normaliser pair through the retry policy and
    /// the circuit breaker: repeated failing reloads trip the breaker, and
    /// further attempts fail fast with [`ServeError::BreakerOpen`] until
    /// the cooldown admits a probe. The served model is untouched on
    /// failure.
    ///
    /// # Errors
    ///
    /// [`ServeError::BreakerOpen`] while failing fast, otherwise
    /// [`ServeError::Load`] after exhausted retries.
    pub fn reload_model(
        &mut self,
        loader: impl FnMut() -> Result<(FeatureNormalizer, MultiStageGcn), String>,
    ) -> Result<(), ServeError> {
        let retry = self.config.retry;
        let (normalizer, model) = self.breaker.call(&retry, loader)?;
        self.normalizer = normalizer;
        self.model = model;
        Ok(())
    }

    /// The work budget for one request: the caller's deadline (or the
    /// configured default), with any injected latency multiplier applied
    /// so a "10× slower machine" fault consumes deadlines 10× faster.
    fn budget_for(&self, deadline: Option<u64>) -> Budget {
        let budget = match deadline.or(self.config.default_deadline) {
            Some(cap) => Budget::with_cap(cap),
            None => Budget::unlimited(),
        };
        budget.with_cost_multiplier(self.plan.latency_multiplier())
    }

    /// Answers one inference request through the degradation ladder.
    /// Every admitted request completes on *some* rung — deadline pressure
    /// degrades quality, never availability.
    ///
    /// With a store attached, an incremental answer first tries to reload
    /// this design's persisted embedding pages (warm restart: classifier
    /// heads only, bit-identical probabilities) and, when it must compute
    /// cold, persists the fresh embeddings for the next restart. A corrupt
    /// page is quarantined and recomputed — degraded speed, never wrong
    /// data.
    ///
    /// # Errors
    ///
    /// [`ServeError::Load`] if the design cannot be featurised,
    /// [`ServeError::Tensor`] on a real model/graph error,
    /// [`ServeError::Store`] if the page store fails environmentally
    /// (I/O, disk-full) — never for corruption, which self-heals.
    pub fn handle_infer(
        &mut self,
        net: &Netlist,
        deadline: Option<u64>,
    ) -> Result<InferResponse, ServeError> {
        let admission_index = self.admitted;
        self.admitted += 1;
        let obs = gcnt_obs::global();
        obs.incr(gcnt_obs::counters::SERVE_REQUESTS);
        let data = GraphData::from_netlist(net, Some(&self.normalizer))
            .map_err(|e| ServeError::Load(format!("design `{}`: {e}", net.name())))?;
        let budget = self.budget_for(deadline);
        let poisoned = self.plan.take_cache_poison(admission_index);

        // Warm restart: reuse embedding pages persisted for this exact
        // (design, model) pair at this graph generation, if the store has
        // them. An injected cache poison skips the warm path too — it
        // must degrade exactly like a stale in-memory cache.
        let fingerprint = match &self.store {
            Some(_) => Some(design_fingerprint(net, &self.model)?),
            None => None,
        };
        if !poisoned {
            if let Some(fp) = &fingerprint {
                let ServeCore { model, store, .. } = self;
                if let Some(js) = store.as_mut() {
                    let loaded = js.load_caches(
                        fp,
                        data.tensors.generation(),
                        data.tensors.node_count() as u64,
                        model,
                    )?;
                    if let Some(caches) = loaded {
                        let rows: u64 = caches
                            .iter()
                            .flat_map(|c| c.layers())
                            .map(|l| l.rows() as u64)
                            .sum();
                        if let Ok(session) = CascadeSession::from_caches(
                            model,
                            &data.tensors,
                            &data.features,
                            caches,
                        ) {
                            obs.add(gcnt_obs::counters::SERVE_STORE_ROWS_LOADED, rows);
                            obs.incr(gcnt_obs::counters::SERVE_RUNG_INCREMENTAL);
                            let probs = session.probs().to_vec();
                            let threshold = self.config.prob_threshold;
                            let positives = probs.iter().filter(|&&p| p >= threshold).count();
                            return Ok(InferResponse {
                                probs,
                                positives,
                                rung: Rung::Incremental,
                                dropped: Vec::new(),
                                spent: budget.spent(),
                                admission_index,
                                warm_rows: rows,
                            });
                        }
                        // Validation refused the restored caches (model or
                        // graph drifted): fall through to the cold path,
                        // which re-persists fresh pages.
                    }
                }
            }
        }

        // Per-design backend choice: large graphs answer on the
        // partition-parallel kernels (bit-identical probabilities), small
        // ones skip the sharding overhead.
        let mut backend = MatrixBackend::auto(&data.tensors);
        let ladder_span = obs.is_enabled().then(std::time::Instant::now);
        let (
            LadderResult {
                probs,
                rung,
                dropped,
            },
            caches,
        ) = classify_with_ladder_backed(
            &self.model,
            &data.tensors,
            &data.features,
            &budget,
            poisoned,
            &mut backend,
        )?;
        if let Some(started) = ladder_span {
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let (rung_counter, rung_hist) = match rung {
                Rung::Incremental => (
                    gcnt_obs::counters::SERVE_RUNG_INCREMENTAL,
                    gcnt_obs::histograms::SERVE_RUNG_INCREMENTAL_NS,
                ),
                Rung::FullSparse => (
                    gcnt_obs::counters::SERVE_RUNG_FULL_SPARSE,
                    gcnt_obs::histograms::SERVE_RUNG_FULL_SPARSE_NS,
                ),
                Rung::FirstStage => (
                    gcnt_obs::counters::SERVE_RUNG_FIRST_STAGE,
                    gcnt_obs::histograms::SERVE_RUNG_FIRST_STAGE_NS,
                ),
            };
            obs.incr(rung_counter);
            obs.observe(rung_hist, elapsed);
            obs.add(gcnt_obs::counters::SERVE_RUNG_DROPS, dropped.len() as u64);
            obs.observe(
                gcnt_obs::histograms::SERVE_REQUEST_ROWS_SPENT,
                budget.spent(),
            );
        }
        // A cold incremental answer just computed every embedding row —
        // persist them so the next restart of this core answers warm.
        if let (Some(fp), Some(caches)) = (&fingerprint, caches) {
            if let Some(js) = self.store.as_mut() {
                let saved = js.save_caches(fp, &caches)?;
                obs.add(gcnt_obs::counters::SERVE_STORE_ROWS_SAVED, saved);
            }
        }
        let threshold = self.config.prob_threshold;
        let positives = probs.iter().filter(|&&p| p >= threshold).count();
        Ok(InferResponse {
            probs,
            positives,
            rung,
            dropped,
            spent: budget.spent(),
            admission_index,
            warm_rows: 0,
        })
    }

    /// Runs (or resumes) a journaled flow job. `net` must be the
    /// **original** pre-flow design: on resume, the journal's committed
    /// batches are replayed against it before new work starts, and the
    /// final [`FlowOutcome`] is bit-identical to an uninterrupted run.
    ///
    /// Every committed batch is fsynced to the journal *before* the next
    /// one may start; with an injected kill-after-record fault the process
    /// aborts right after the planned record reaches disk.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the journal cannot be recovered or
    /// appended, [`ServeError::Store`] if a store-backed journal's
    /// compacted prefix cannot be read back or a compaction commit fails,
    /// [`ServeError::Flow`] if the flow itself fails — committed batches
    /// stay journaled either way, so a rerun resumes.
    pub fn run_flow_job(
        &mut self,
        net: &mut Netlist,
        cfg: &FlowConfig,
        journal_path: &Path,
        deadline: Option<u64>,
    ) -> Result<FlowResponse, ServeError> {
        let header = JournalHeader::describe(net, cfg)?;
        let budget = self.budget_for(deadline);
        let ServeCore {
            model,
            normalizer,
            plan,
            store,
            ..
        } = self;
        let plan: &FaultPlan = plan;
        let mut store = store.as_mut();
        let recovered = match store.as_mut() {
            Some(js) => FlowJournal::open_with_store(journal_path, &header, js.store_mut())?,
            None => FlowJournal::open(journal_path, &header)?,
        };
        let mut journal = recovered.journal;
        let resumed_batches = recovered.records.len();
        gcnt_obs::global().add(
            gcnt_obs::counters::SERVE_JOURNAL_REPLAYED,
            resumed_batches as u64,
        );
        let mut observer = |rec: &gcnt_dft::flow::BatchRecord| -> Result<(), FlowError> {
            let seq = journal
                .append(rec)
                .map_err(|e| FlowError::Journal(e.to_string()))?;
            if plan.should_kill_after_record(seq) {
                // The deterministic `kill -9`: the record is on disk, the
                // next batch never starts.
                std::process::abort();
            }
            // With a store attached, fold the live tail into pages once
            // it reaches the policy's window — this is what keeps the
            // on-disk journal bounded over long jobs.
            if let Some(js) = store.as_mut() {
                if journal.live_records() >= js.policy().compact_after_records {
                    journal
                        .compact_into(js.store_mut(), plan)
                        .map_err(|e| FlowError::Journal(e.to_string()))?;
                }
            }
            Ok(())
        };
        let outcome = run_gcn_opi_resumable(
            net,
            &*normalizer,
            &*model,
            cfg,
            &budget,
            &recovered.records,
            &mut observer,
        )
        .map_err(ServeError::Flow)?;
        Ok(FlowResponse {
            outcome,
            resumed_batches,
            journal_records: journal.next_seq(),
            recovered_torn_tail: recovered.dropped_torn_tail,
        })
    }
}

/// A job travelling through the bounded queue.
enum Job {
    Infer {
        net: Netlist,
        deadline: Option<u64>,
        reply: mpsc::Sender<Result<InferResponse, ServeError>>,
    },
    Flow {
        net: Netlist,
        cfg: FlowConfig,
        journal: PathBuf,
        deadline: Option<u64>,
        reply: mpsc::Sender<Result<FlowJobResult, ServeError>>,
    },
    /// Test hook: park the worker until the sender is dropped, so tests
    /// can fill the queue deterministically.
    #[cfg(test)]
    Barrier(mpsc::Receiver<()>),
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Job::Infer { .. } => "Job::Infer",
            Job::Flow { .. } => "Job::Flow",
            #[cfg(test)]
            Job::Barrier(_) => "Job::Barrier",
        })
    }
}

/// A completed flow job: the modified design plus the flow's response.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowJobResult {
    /// The design after insertion.
    pub net: Netlist,
    /// Outcome and journal accounting.
    pub response: FlowResponse,
}

/// A pending reply; [`Ticket::wait`] blocks until the worker answers.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Ticket(..)")
    }
}

impl<T> Ticket<T> {
    /// Blocks for the worker's answer.
    ///
    /// # Errors
    ///
    /// The worker's error, or [`ServeError::WorkerGone`] if it died.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerGone)?
    }
}

/// The in-process service front end: a bounded queue feeding one worker
/// thread that owns the [`ServeCore`]. Submission never blocks — a full
/// queue rejects immediately with [`ServeError::Overloaded`], which is
/// what keeps a request storm from growing an unbounded backlog.
pub struct ServeHandle {
    queue: BoundedQueue<Job>,
    worker: Option<thread::JoinHandle<ServeCore>>,
    saturated: bool,
}

impl ServeHandle {
    /// Starts the worker thread around `core`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] if the OS refuses the worker thread —
    /// nothing was started and `core` is consumed with it.
    pub fn start(core: ServeCore) -> Result<Self, ServeError> {
        let saturated = core.queue_saturated();
        let queue = BoundedQueue::new(core.config.queue_capacity);
        let jobs = queue.clone();
        let worker = thread::Builder::new()
            .name("gcnt-serve-worker".to_string())
            .spawn(move || {
                let mut core = core;
                while let Some(job) = jobs.pop() {
                    match job {
                        Job::Infer {
                            net,
                            deadline,
                            reply,
                        } => {
                            let _ = reply.send(core.handle_infer(&net, deadline));
                        }
                        Job::Flow {
                            mut net,
                            cfg,
                            journal,
                            deadline,
                            reply,
                        } => {
                            let out = core
                                .run_flow_job(&mut net, &cfg, &journal, deadline)
                                .map(|response| FlowJobResult { net, response });
                            let _ = reply.send(out);
                        }
                        #[cfg(test)]
                        Job::Barrier(hold) => {
                            let _ = hold.recv();
                        }
                    }
                }
                core
            })
            .map_err(|e| ServeError::Spawn(e.to_string()))?;
        Ok(ServeHandle {
            queue,
            worker: Some(worker),
            saturated,
        })
    }

    /// Requests pending in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn admit(&self, job: Job) -> Result<(), ServeError> {
        if self.saturated {
            return Err(ServeError::Overloaded {
                capacity: self.queue.capacity(),
            });
        }
        self.queue.try_push(job).map_err(|(_, e)| e)
    }

    /// Submits an inference request; returns a [`Ticket`] immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] if the queue is full (or saturated by
    /// fault injection); nothing was enqueued.
    pub fn submit_infer(
        &self,
        net: Netlist,
        deadline: Option<u64>,
    ) -> Result<Ticket<InferResponse>, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.admit(Job::Infer {
            net,
            deadline,
            reply,
        })?;
        Ok(Ticket { rx })
    }

    /// Submits and waits: admission control still applies, the wait does
    /// not.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit_infer`], plus the worker's error.
    pub fn infer(&self, net: Netlist, deadline: Option<u64>) -> Result<InferResponse, ServeError> {
        self.submit_infer(net, deadline)?.wait()
    }

    /// Submits a journaled flow job; returns a [`Ticket`] immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] if the queue is full.
    pub fn submit_flow(
        &self,
        net: Netlist,
        cfg: FlowConfig,
        journal: PathBuf,
        deadline: Option<u64>,
    ) -> Result<Ticket<FlowJobResult>, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.admit(Job::Flow {
            net,
            cfg,
            journal,
            deadline,
            reply,
        })?;
        Ok(Ticket { rx })
    }

    /// Submits a flow job and waits for it.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit_flow`], plus the worker's error.
    pub fn flow(
        &self,
        net: Netlist,
        cfg: FlowConfig,
        journal: PathBuf,
        deadline: Option<u64>,
    ) -> Result<FlowJobResult, ServeError> {
        self.submit_flow(net, cfg, journal, deadline)?.wait()
    }

    /// Drains the queue, stops the worker, and hands the core back.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerGone`] if the worker thread panicked — the
    /// core died with it and cannot be handed back.
    pub fn shutdown(mut self) -> Result<ServeCore, ServeError> {
        self.queue.close();
        match self.worker.take() {
            Some(worker) => worker.join().map_err(|_| ServeError::WorkerGone),
            None => Err(ServeError::WorkerGone),
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{Gcn, GcnConfig};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-serve-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn model() -> (FeatureNormalizer, MultiStageGcn, Netlist) {
        let net = generate(&GeneratorConfig::sized("serve", 11, 200));
        let data = GraphData::from_netlist(&net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![6, 6],
            fc_dims: vec![6],
            ..GcnConfig::default()
        };
        let stages = vec![
            Gcn::new(&cfg, &mut seeded_rng(31)),
            Gcn::new(&cfg, &mut seeded_rng(32)),
        ];
        (
            data.normalizer,
            MultiStageGcn::from_stages(stages, 0.5),
            net,
        )
    }

    fn core() -> (ServeCore, Netlist) {
        let (normalizer, model, net) = model();
        (
            ServeCore::new(normalizer, model, ServeConfig::default()),
            net,
        )
    }

    #[test]
    fn handle_round_trips_an_inference_request() {
        let (core, net) = core();
        let handle = ServeHandle::start(core).expect("start worker");
        let resp = handle.infer(net.clone(), None).unwrap();
        assert_eq!(resp.rung, Rung::Incremental);
        assert_eq!(resp.probs.len(), net.node_count());
        assert!(resp.spent > 0);
        assert_eq!(resp.admission_index, 0);
        let core = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(core.admitted(), 1);
    }

    #[test]
    fn tight_deadline_degrades_but_completes() {
        let (core, net) = core();
        let handle = ServeHandle::start(core).expect("start worker");
        let resp = handle.infer(net.clone(), Some(3)).unwrap();
        assert_eq!(resp.rung, Rung::FirstStage);
        assert_eq!(resp.dropped.len(), 2);
        assert_eq!(
            resp.probs.len(),
            net.node_count(),
            "zero drops: it answered"
        );
        drop(handle);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let (normalizer, model_, net) = model();
        let core = ServeCore::new(
            normalizer,
            model_,
            ServeConfig {
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        let handle = ServeHandle::start(core).expect("start worker");
        // Park the worker so the queue genuinely fills.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        handle.queue.try_push(Job::Barrier(hold_rx)).unwrap();
        // Give the worker a moment to take the barrier off the queue.
        while handle.pending() > 0 {
            std::thread::yield_now();
        }
        let t1 = handle.submit_infer(net.clone(), None).unwrap();
        let t2 = handle.submit_infer(net.clone(), None).unwrap();
        let err = handle.submit_infer(net.clone(), None).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { capacity: 2 }));
        // Release the worker: every *admitted* request still completes.
        drop(hold_tx);
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        drop(handle);
    }

    #[test]
    fn reload_failures_trip_the_breaker_and_a_probe_heals_it() {
        let (mut core, _) = core();
        let fail =
            || -> Result<(FeatureNormalizer, MultiStageGcn), String> { Err("enoent".to_string()) };
        // Breaker threshold is 3 guarded calls (each with its own retries).
        for _ in 0..3 {
            assert!(matches!(core.reload_model(fail), Err(ServeError::Load(_))));
        }
        let mut fast_failures = 0;
        while let Err(ServeError::BreakerOpen { .. }) = core.reload_model(fail) {
            fast_failures += 1;
            assert!(fast_failures < 100, "breaker never half-opened");
        }
        // The loop above consumed the cooldown and then ran (and failed)
        // the probe; one more success closes it for good.
        while matches!(
            core.reload_model(&mut || {
                let (n, m, _) = model();
                Ok((n, m))
            }),
            Err(ServeError::BreakerOpen { .. })
        ) {}
        assert_eq!(fast_failures, core.config().breaker.cooldown_calls);
        assert!(core
            .reload_model(&mut || {
                let (n, m, _) = model();
                Ok((n, m))
            })
            .is_ok());
    }

    #[test]
    fn flow_job_journals_and_resumes_bit_identically() {
        let (mut core, net) = core();
        let cfg = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 2,
            candidate_limit: 4,
            ..FlowConfig::default()
        };
        let dir = temp_dir("flowjob");

        // Uninterrupted reference run.
        let mut ref_net = net.clone();
        let reference = core
            .run_flow_job(&mut ref_net, &cfg, &dir.join("ref.wal"), None)
            .unwrap();
        assert_eq!(reference.resumed_batches, 0);
        assert!(reference.journal_records > 0);

        // "Killed" run: copy a strict prefix of the reference journal, as
        // if the process died between two records, then resume.
        let text = std::fs::read_to_string(dir.join("ref.wal")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for cut in 1..lines.len() {
            let partial = dir.join(format!("cut{cut}.wal"));
            std::fs::write(&partial, lines[..cut].join("\n") + "\n").unwrap();
            let mut resumed_net = net.clone();
            let resumed = core
                .run_flow_job(&mut resumed_net, &cfg, &partial, None)
                .unwrap();
            assert_eq!(resumed.resumed_batches, cut - 1);
            assert_eq!(resumed.outcome, reference.outcome, "cut at {cut}");
            assert_eq!(resumed_net, ref_net, "cut at {cut}");
            assert_eq!(resumed.journal_records, reference.journal_records);
            // The healed journal is byte-identical to the reference one.
            assert_eq!(
                std::fs::read_to_string(&partial).unwrap(),
                text,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn warm_restart_reloads_embeddings_from_pages() {
        use crate::store::StorePolicy;
        let (normalizer, model_, net) = model();
        let dir = temp_dir("warmstore");
        let store = JobStore::open(&dir.join("store"), StorePolicy::default()).unwrap();
        let mut cold_core =
            ServeCore::new(normalizer.clone(), model_.clone(), ServeConfig::default())
                .with_store(store);
        let cold = cold_core.handle_infer(&net, None).unwrap();
        assert_eq!(cold.rung, Rung::Incremental);
        assert_eq!(cold.warm_rows, 0, "first answer computes cold");
        drop(cold_core);

        // A "restarted process": fresh core, same store directory. The
        // base embeddings come back from pages — no full recompute — and
        // the answer is bit-identical.
        let store = JobStore::open(&dir.join("store"), StorePolicy::default()).unwrap();
        let mut warm_core =
            ServeCore::new(normalizer, model_, ServeConfig::default()).with_store(store);
        let warm = warm_core.handle_infer(&net, None).unwrap();
        assert!(warm.warm_rows > 0, "rows were reloaded from the store");
        assert_eq!(warm.rung, Rung::Incremental);
        assert_eq!(warm.probs, cold.probs, "warm restart is bit-identical");
    }

    #[test]
    fn corrupt_embedding_page_recomputes_cold_then_heals() {
        use crate::store::StorePolicy;
        let (normalizer, model_, net) = model();
        let dir = temp_dir("quarantine");
        let store = JobStore::open(&dir.join("store"), StorePolicy::default()).unwrap();
        let mut core = ServeCore::new(normalizer.clone(), model_.clone(), ServeConfig::default())
            .with_store(store);
        let cold = core.handle_infer(&net, None).unwrap();
        drop(core);

        // Flip a byte in the page data: the warm path must quarantine and
        // recompute, never answer from the damaged rows.
        let data_file = dir.join("store").join("pages-0000.dat");
        let mut bytes = std::fs::read(&data_file).unwrap();
        bytes[64] ^= 0x01;
        std::fs::write(&data_file, &bytes).unwrap();

        let store = JobStore::open(&dir.join("store"), StorePolicy::default()).unwrap();
        let mut core = ServeCore::new(normalizer, model_, ServeConfig::default()).with_store(store);
        let healed = core.handle_infer(&net, None).unwrap();
        assert_eq!(healed.warm_rows, 0, "corruption forces a cold recompute");
        assert_eq!(healed.probs, cold.probs, "and the answer is still right");
        // The cold path re-persisted fresh pages: the next request warms.
        let warm = core.handle_infer(&net, None).unwrap();
        assert!(warm.warm_rows > 0, "store healed after recompute");
        assert_eq!(warm.probs, cold.probs);
    }

    #[test]
    fn store_backed_flow_job_compacts_and_stays_bit_identical() {
        use crate::store::StorePolicy;
        let cfg = FlowConfig {
            max_iterations: 3,
            ops_per_iteration: 2,
            candidate_limit: 4,
            ..FlowConfig::default()
        };
        let dir = temp_dir("flowstore");

        // Storeless reference run.
        let (mut ref_core, net) = core();
        let mut ref_net = net.clone();
        let reference = ref_core
            .run_flow_job(&mut ref_net, &cfg, &dir.join("ref.wal"), None)
            .unwrap();
        assert!(reference.journal_records > 0);

        // Store-backed run compacting after every record: the journal
        // file stays at header + marker size for the whole job.
        let policy = StorePolicy {
            compact_after_records: 1,
            max_journal_bytes: 4096,
        };
        let (normalizer, model_, _) = model();
        let store = JobStore::open(&dir.join("store"), policy).unwrap();
        let mut core = ServeCore::new(normalizer, model_, ServeConfig::default()).with_store(store);
        let mut job_net = net.clone();
        let done = core
            .run_flow_job(&mut job_net, &cfg, &dir.join("job.wal"), None)
            .unwrap();
        assert_eq!(done.outcome, reference.outcome, "store changes nothing");
        assert_eq!(job_net, ref_net);
        assert_eq!(done.journal_records, reference.journal_records);
        let wal_bytes = std::fs::metadata(dir.join("job.wal")).unwrap().len();
        assert!(
            wal_bytes <= policy.max_journal_bytes,
            "compaction bounds the journal ({wal_bytes} bytes)"
        );

        // A rerun resumes every batch out of the compacted pages.
        let mut resumed_net = net.clone();
        let resumed = core
            .run_flow_job(&mut resumed_net, &cfg, &dir.join("job.wal"), None)
            .unwrap();
        assert_eq!(resumed.resumed_batches as u64, done.journal_records);
        assert_eq!(resumed.outcome, reference.outcome);
        assert_eq!(resumed_net, ref_net);
    }

    #[test]
    fn flow_job_through_the_handle() {
        let (core, net) = core();
        let handle = ServeHandle::start(core).expect("start worker");
        let dir = temp_dir("handleflow");
        let cfg = FlowConfig {
            max_iterations: 2,
            ops_per_iteration: 2,
            candidate_limit: 4,
            ..FlowConfig::default()
        };
        let done = handle
            .flow(net.clone(), cfg, dir.join("job.wal"), None)
            .unwrap();
        assert!(done.response.journal_records > 0);
        assert!(done.net.node_count() >= net.node_count());
        drop(handle);
    }

    #[cfg(feature = "fault-inject")]
    mod faulted {
        use super::*;

        #[test]
        fn injected_latency_forces_degradation_with_zero_drops() {
            let (normalizer, model_, net) = model();
            // A deadline three full passes wide: comfortable normally,
            // impossible on a "10x slower machine".
            let full_rows: u64 = model_
                .stages()
                .iter()
                .map(|g| g.depth() as u64 * net.node_count() as u64)
                .sum();
            let config = ServeConfig {
                default_deadline: Some(3 * full_rows),
                ..ServeConfig::default()
            };
            let healthy = ServeCore::new(normalizer.clone(), model_.clone(), config);
            let slow = ServeCore::new(normalizer, model_, config)
                .with_faults(FaultPlan::none().with_latency_multiplier(10));
            let h1 = ServeHandle::start(healthy).expect("start worker");
            let h2 = ServeHandle::start(slow).expect("start worker");
            for i in 0..4 {
                let fast = h1.infer(net.clone(), None).unwrap();
                assert_eq!(fast.rung, Rung::Incremental, "request {i}");
                let slow = h2.infer(net.clone(), None).unwrap();
                assert!(
                    slow.rung > Rung::Incremental,
                    "request {i} must degrade under injected latency"
                );
                assert_eq!(slow.probs.len(), net.node_count(), "request {i} completed");
            }
            drop(h1);
            drop(h2);
        }

        #[test]
        fn saturated_queue_rejects_every_submission() {
            let (normalizer, model_, net) = model();
            let core = ServeCore::new(normalizer, model_, ServeConfig::default())
                .with_faults(FaultPlan::none().with_queue_saturation());
            let handle = ServeHandle::start(core).expect("start worker");
            for _ in 0..3 {
                assert!(matches!(
                    handle.infer(net.clone(), None),
                    Err(ServeError::Overloaded { .. })
                ));
            }
            let core = handle.shutdown().expect("worker exits cleanly");
            assert_eq!(core.admitted(), 0, "rejected requests never ran");
        }

        #[test]
        fn cache_poison_degrades_exactly_the_planned_request() {
            let (normalizer, model_, net) = model();
            let core = ServeCore::new(normalizer, model_, ServeConfig::default())
                .with_faults(FaultPlan::none().with_cache_poison(1));
            let handle = ServeHandle::start(core).expect("start worker");
            assert_eq!(
                handle.infer(net.clone(), None).unwrap().rung,
                Rung::Incremental
            );
            let poisoned = handle.infer(net.clone(), None).unwrap();
            assert_eq!(poisoned.rung, Rung::FullSparse);
            assert_eq!(poisoned.dropped.len(), 1);
            assert_eq!(
                handle.infer(net.clone(), None).unwrap().rung,
                Rung::Incremental
            );
            drop(handle);
        }
    }
}
