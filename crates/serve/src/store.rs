//! Page-store adapter for the serving layer: warm-restart embedding
//! persistence and the policy that drives journal compaction.
//!
//! # Warm restart
//!
//! A [`crate::ServeCore`] answering on the incremental rung computes one
//! full cascade pass — per-layer embeddings `E_1..E_D` for every stage —
//! before the session can reuse dirty cones. Those matrices are pure
//! functions of `(design, model, graph generation)`, so a restarted
//! process can reload them from checksummed pages instead of recomputing:
//! [`JobStore::save_caches`] writes each layer as one segment keyed by
//! the design/model fingerprint, and [`JobStore::load_caches`] restores
//! them for [`gcnt_core::CascadeSession::from_caches`], which reruns only
//! the classifier heads. Probabilities are bit-identical either way.
//!
//! # Failure contract
//!
//! Loading never trusts a page: a corrupt or mismatched segment is
//! quarantined and the answer is recomputed cold — degraded speed, never
//! wrong data. Only environmental failures (I/O, disk-full) surface, as
//! [`ServeError::Store`].

use std::path::Path;

use gcnt_core::{EmbeddingCache, MultiStageGcn};
use gcnt_netlist::{format, Netlist};
use gcnt_store::{checksum_hex, PageStore, SegmentKey, StoreError};
use gcnt_tensor::Matrix;

use crate::error::ServeError;

/// When the serving layer folds journal records into store pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorePolicy {
    /// Compact once this many records sit in the journal's live tail.
    pub compact_after_records: u64,
    /// Growth cap on the on-disk journal file; exceeding it raises the
    /// `JN003` lint warning (and, with compaction enabled, should not
    /// happen at all).
    pub max_journal_bytes: u64,
}

impl Default for StorePolicy {
    fn default() -> Self {
        StorePolicy {
            compact_after_records: 16,
            max_journal_bytes: 64 * 1024,
        }
    }
}

/// A [`PageStore`] plus the serving policy around it.
#[derive(Debug)]
pub struct JobStore {
    store: PageStore,
    policy: StorePolicy,
}

fn store_err(e: StoreError) -> ServeError {
    ServeError::Store(e.to_string())
}

impl JobStore {
    /// Opens (or creates) the page store under `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] wrapping any [`StoreError`] from
    /// [`PageStore::open`] — unreadable metadata, a truncated data file,
    /// or an unsupported version.
    pub fn open(dir: &Path, policy: StorePolicy) -> Result<Self, ServeError> {
        Ok(JobStore {
            store: PageStore::open(dir).map_err(store_err)?,
            policy,
        })
    }

    /// Wraps an already-open store (e.g. one carrying injected faults).
    pub fn from_store(store: PageStore, policy: StorePolicy) -> Self {
        JobStore { store, policy }
    }

    /// The compaction/growth policy.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// The underlying page store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Mutable access to the underlying page store.
    pub fn store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// Persists one cascade's per-stage embedding caches as segments;
    /// returns the total embedding rows written.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on I/O or (possibly injected) disk-full —
    /// nothing partial is committed for the failing segment.
    pub fn save_caches(
        &mut self,
        fingerprint: &str,
        caches: &[EmbeddingCache],
    ) -> Result<u64, ServeError> {
        let mut rows = 0u64;
        for (stage, cache) in caches.iter().enumerate() {
            for (layer_idx, layer) in cache.layers().iter().enumerate() {
                let key = embed_key(fingerprint, stage, layer_idx, cache.generation(), layer);
                self.store
                    .put_segment(&key, &matrix_to_bytes(layer))
                    .map_err(store_err)?;
                rows += layer.rows() as u64;
            }
        }
        Ok(rows)
    }

    /// Restores the per-stage embedding caches saved for
    /// `(fingerprint, generation)`, or `None` if any segment is absent —
    /// or corrupt, in which case the bad segment is quarantined first so
    /// the cold recompute can re-persist it. `nodes` is the design's node
    /// count (the segments' row range).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] only on environmental failures (I/O);
    /// corruption recovers by quarantine + `None`, never by returning
    /// wrong data.
    pub fn load_caches(
        &mut self,
        fingerprint: &str,
        generation: u64,
        nodes: u64,
        model: &MultiStageGcn,
    ) -> Result<Option<Vec<EmbeddingCache>>, ServeError> {
        let mut caches = Vec::with_capacity(model.stages().len());
        for (stage, gcn) in model.stages().iter().enumerate() {
            let mut layers = Vec::with_capacity(gcn.depth());
            for layer_idx in 0..gcn.depth() {
                let key = SegmentKey {
                    design: fingerprint.to_string(),
                    kind: format!("embed/s{stage}/l{layer_idx}"),
                    generation,
                    start: 0,
                    end: nodes,
                };
                let bytes = match self.store.get_segment(&key) {
                    Ok(Some(bytes)) => bytes,
                    Ok(None) => return Ok(None),
                    Err(
                        e @ (StoreError::PageCorrupt { .. } | StoreError::SegmentCorrupt { .. }),
                    ) => {
                        // Checksummed pages caught the damage; drop the
                        // segment and let the caller recompute it.
                        let _ = e;
                        self.store.quarantine(&key).map_err(store_err)?;
                        return Ok(None);
                    }
                    Err(e) => return Err(store_err(e)),
                };
                match matrix_from_bytes(&bytes) {
                    Ok(m) if m.rows() as u64 == nodes => layers.push(m),
                    // A decodable payload with the wrong shape is still
                    // not the data we asked for: quarantine, recompute.
                    _ => {
                        self.store.quarantine(&key).map_err(store_err)?;
                        return Ok(None);
                    }
                }
            }
            match EmbeddingCache::from_layers(layers, generation) {
                Ok(cache) => caches.push(cache),
                Err(_) => return Ok(None),
            }
        }
        Ok(Some(caches))
    }
}

fn embed_key(
    fingerprint: &str,
    stage: usize,
    layer_idx: usize,
    generation: u64,
    layer: &Matrix,
) -> SegmentKey {
    SegmentKey {
        design: fingerprint.to_string(),
        kind: format!("embed/s{stage}/l{layer_idx}"),
        generation,
        start: 0,
        end: layer.rows() as u64,
    }
}

/// Fingerprints a `(design, model)` pair for warm-restart segment keys:
/// embeddings are only reusable when both match bit-for-bit.
///
/// # Errors
///
/// [`ServeError::Store`] if the model cannot be serialized for hashing.
pub fn design_fingerprint(net: &Netlist, model: &MultiStageGcn) -> Result<String, ServeError> {
    let model_json = serde_json::to_string(model)
        .map_err(|e| ServeError::Store(format!("model fingerprint serialization: {e}")))?;
    Ok(format!(
        "{}-{}",
        checksum_hex(format::write(net).as_bytes()),
        checksum_hex(model_json.as_bytes())
    ))
}

/// Encodes a matrix as `rows: u32 LE, cols: u32 LE, data: f32 LE…` —
/// fixed-width, endian-pinned, so a segment checksum covers exactly the
/// numbers the session will reuse.
pub(crate) fn matrix_to_bytes(m: &Matrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + m.as_slice().len() * 4);
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let arr = <[u8; 4]>::try_from(bytes.get(at..at + 4)?).ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Decodes [`matrix_to_bytes`]'s format; the error is a human-readable
/// reason (callers quarantine and recompute rather than propagate it).
pub(crate) fn matrix_from_bytes(bytes: &[u8]) -> Result<Matrix, String> {
    let rows = u32_at(bytes, 0).ok_or("truncated matrix header")? as usize;
    let cols = u32_at(bytes, 4).ok_or("truncated matrix header")? as usize;
    let body = bytes.get(8..).unwrap_or(&[]);
    let expected = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or("matrix dimensions overflow")?;
    if body.len() != expected {
        return Err(format!(
            "matrix body holds {} bytes, {rows}x{cols} needs {expected}",
            body.len()
        ));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for chunk in body.chunks_exact(4) {
        let arr = <[u8; 4]>::try_from(chunk).map_err(|_| "misaligned matrix body".to_string())?;
        data.push(f32::from_le_bytes(arr));
    }
    Matrix::from_vec(rows, cols, data).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{CascadeSession, Gcn, GcnConfig, GraphData};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-serve-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (Netlist, GraphData, MultiStageGcn) {
        let net = generate(&GeneratorConfig::sized("jobstore", 7, 150));
        let data = GraphData::from_netlist(&net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![5, 5],
            fc_dims: vec![5],
            ..GcnConfig::default()
        };
        let stages = vec![
            Gcn::new(&cfg, &mut seeded_rng(41)),
            Gcn::new(&cfg, &mut seeded_rng(42)),
        ];
        (net, data, MultiStageGcn::from_stages(stages, 0.5))
    }

    #[test]
    fn matrix_codec_round_trips_bit_exactly() {
        let m =
            Matrix::from_vec(3, 2, vec![0.0, -1.5, f32::MIN_POSITIVE, 7.25, -0.0, 1e30]).unwrap();
        let back = matrix_from_bytes(&matrix_to_bytes(&m)).unwrap();
        assert_eq!(back.shape(), (3, 2));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(matrix_from_bytes(&[1, 2, 3]).is_err(), "truncated header");
        let mut short = matrix_to_bytes(&m);
        short.pop();
        assert!(matrix_from_bytes(&short).is_err(), "truncated body");
    }

    #[test]
    fn caches_round_trip_through_the_store_bit_identically() {
        let (net, data, model) = fixture();
        let session = CascadeSession::for_cascade(&model, &data.tensors, &data.features).unwrap();
        let cold_probs = session.probs().to_vec();
        let caches = session.into_caches();
        let n = data.node_count() as u64;
        let generation = data.tensors.generation();

        let fp = design_fingerprint(&net, &model).unwrap();
        let dir = temp_dir("roundtrip");
        let mut js = JobStore::open(&dir, StorePolicy::default()).unwrap();
        let saved = js.save_caches(&fp, &caches).unwrap();
        assert!(saved > 0);

        // A fresh store handle (a "restarted process") reloads them.
        let mut js = JobStore::open(&dir, StorePolicy::default()).unwrap();
        let restored = js.load_caches(&fp, generation, n, &model).unwrap().unwrap();
        let warm =
            CascadeSession::from_caches(&model, &data.tensors, &data.features, restored).unwrap();
        assert_eq!(
            warm.probs(),
            &cold_probs[..],
            "warm restart is bit-identical"
        );

        // A different fingerprint is a miss, not a wrong answer.
        assert!(js
            .load_caches("other", generation, n, &model)
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_reports_a_miss() {
        let (net, data, model) = fixture();
        let session = CascadeSession::for_cascade(&model, &data.tensors, &data.features).unwrap();
        let caches = session.into_caches();
        let n = data.node_count() as u64;
        let generation = data.tensors.generation();
        let fp = design_fingerprint(&net, &model).unwrap();
        let dir = temp_dir("corrupt");
        let mut js = JobStore::open(&dir, StorePolicy::default()).unwrap();
        js.save_caches(&fp, &caches).unwrap();
        drop(js);

        // Flip one byte inside the first page's payload.
        let data_file = dir.join("pages-0000.dat");
        let mut bytes = std::fs::read(&data_file).unwrap();
        bytes[100] ^= 0x40;
        std::fs::write(&data_file, &bytes).unwrap();

        let mut js = JobStore::open(&dir, StorePolicy::default()).unwrap();
        let keys_before = js.store().keys().len();
        assert!(
            js.load_caches(&fp, generation, n, &model)
                .unwrap()
                .is_none(),
            "corruption is a miss, never wrong data"
        );
        assert!(
            js.store().keys().len() < keys_before,
            "the bad segment was quarantined"
        );
        // Re-saving (the cold path's recompute) heals the store.
        js.save_caches(&fp, &caches).unwrap();
        assert!(js
            .load_caches(&fp, generation, n, &model)
            .unwrap()
            .is_some());
    }
}
