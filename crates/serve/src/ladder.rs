//! The degradation ladder: three ways to answer an inference request,
//! ordered from cheapest-when-warm to cheapest-unconditionally.
//!
//! | rung | what runs | when it is skipped |
//! |------|-----------|--------------------|
//! | [`Rung::Incremental`] | cascade session (dirty-cone reuse) | stale/poisoned cache, budget stop |
//! | [`Rung::FullSparse`]  | full sparse cascade inference | budget stop |
//! | [`Rung::FirstStage`]  | first cascade stage only, **unbudgeted** | never |
//!
//! The ladder exists to make deadline pressure *lossy in quality, not in
//! availability*: every admitted request completes on some rung, and the
//! response says which. The final rung runs without a budget — stage-0 of
//! the cascade is the coarse classifier the paper's cascade starts from,
//! so its scores are a sound (if less refined) ranking, and it is the
//! cheapest full pass the model owns.
//!
//! All rungs share one [`Budget`], so work burnt on an abandoned rung
//! counts against the deadline — and because row costs are deterministic,
//! the selected rung is a monotone function of the deadline: a tighter
//! budget can never select a *higher* (earlier) rung than a looser one on
//! the same request. Cancellation does not degrade: a request nobody is
//! waiting for is aborted, not answered worse.

use std::fmt;

use gcnt_core::{CascadeSession, EmbeddingCache, GraphTensors, MatrixBackend, MultiStageGcn};
use gcnt_tensor::{Budget, Matrix, TensorError};

use crate::error::ServeError;

/// One rung of the degradation ladder, ordered top (`Incremental`) to
/// bottom (`FirstStage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Incremental cascade session: full quality, cheapest when caches
    /// are warm.
    Incremental,
    /// Full sparse cascade inference: full quality, no cache dependence.
    FullSparse,
    /// First cascade stage only, run without a budget: degraded quality,
    /// guaranteed completion.
    FirstStage,
}

impl Rung {
    /// Stable lowercase name, used in responses and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Incremental => "incremental",
            Rung::FullSparse => "full-sparse",
            Rung::FirstStage => "first-stage",
        }
    }

    /// Position on the ladder: 0 = top. Degradation only ever increases
    /// this.
    pub fn depth(self) -> usize {
        match self {
            Rung::Incremental => 0,
            Rung::FullSparse => 1,
            Rung::FirstStage => 2,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a rung was abandoned on the way down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungDrop {
    /// The rung that was tried.
    pub rung: Rung,
    /// The error that pushed the ladder down (display form).
    pub cause: String,
}

/// A completed ladder run: the scores, the rung that produced them, and
/// the rungs abandoned on the way.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderResult {
    /// Positive-class probability per node, from `rung`.
    pub probs: Vec<f32>,
    /// The rung that completed.
    pub rung: Rung,
    /// Rungs tried and abandoned before `rung`, top-down.
    pub dropped: Vec<RungDrop>,
}

/// Whether an error steps the ladder down (instead of failing the
/// request): budget exhaustion and stale caches degrade, everything else
/// — including cancellation — aborts.
fn degrades(e: &TensorError) -> bool {
    matches!(
        e,
        TensorError::BudgetExceeded { .. } | TensorError::StaleCache { .. }
    )
}

/// Runs the ladder for one request. `poison_incremental` is the injected
/// stale-cache fault: the incremental rung is abandoned exactly as if its
/// cache generation had drifted.
///
/// # Errors
///
/// [`ServeError::Tensor`] on a real model/graph error (shape mismatch,
/// cancellation) — never on deadline pressure, which degrades instead.
pub fn classify_with_ladder(
    model: &MultiStageGcn,
    t: &GraphTensors,
    x: &Matrix,
    budget: &Budget,
    poison_incremental: bool,
) -> Result<LadderResult, ServeError> {
    classify_with_ladder_sessioned(model, t, x, budget, poison_incremental)
        .map(|(result, _)| result)
}

/// [`classify_with_ladder`], additionally handing back the incremental
/// rung's per-stage embedding caches when that rung answered — the
/// warm-restart save path persists them to a page store. Lower rungs
/// never build caches, so they return `None`.
///
/// # Errors
///
/// As [`classify_with_ladder`].
pub fn classify_with_ladder_sessioned(
    model: &MultiStageGcn,
    t: &GraphTensors,
    x: &Matrix,
    budget: &Budget,
    poison_incremental: bool,
) -> Result<(LadderResult, Option<Vec<EmbeddingCache>>), ServeError> {
    classify_with_ladder_backed(
        model,
        t,
        x,
        budget,
        poison_incremental,
        &mut MatrixBackend::serial(),
    )
}

/// [`classify_with_ladder_sessioned`] on an explicit [`MatrixBackend`]:
/// the two full-quality rungs run their SpMM aggregations through
/// `backend` (bit-identical to serial by construction), so a large design
/// can answer on the partition-parallel kernels. The unbudgeted floor
/// rung stays serial — it is the availability guarantee and must not
/// depend on a shard plan that could be stale.
///
/// # Errors
///
/// As [`classify_with_ladder`].
pub fn classify_with_ladder_backed(
    model: &MultiStageGcn,
    t: &GraphTensors,
    x: &Matrix,
    budget: &Budget,
    poison_incremental: bool,
    backend: &mut MatrixBackend,
) -> Result<(LadderResult, Option<Vec<EmbeddingCache>>), ServeError> {
    let mut dropped = Vec::new();

    // Rung 0: incremental session.
    if poison_incremental {
        dropped.push(RungDrop {
            rung: Rung::Incremental,
            cause: TensorError::StaleCache { cache: 0, graph: 1 }.to_string() + " (injected)",
        });
    } else {
        match CascadeSession::for_cascade_budgeted_with(model, t, x, budget, backend) {
            Ok(session) => {
                let probs = session.probs().to_vec();
                return Ok((
                    LadderResult {
                        probs,
                        rung: Rung::Incremental,
                        dropped,
                    },
                    Some(session.into_caches()),
                ));
            }
            Err(e) if degrades(&e) => dropped.push(RungDrop {
                rung: Rung::Incremental,
                cause: e.to_string(),
            }),
            Err(e) => return Err(e.into()),
        }
    }

    // Rung 1: full sparse inference.
    match model.predict_proba_budgeted_with(t, x, budget, backend) {
        Ok(probs) => {
            return Ok((
                LadderResult {
                    probs,
                    rung: Rung::FullSparse,
                    dropped,
                },
                None,
            ))
        }
        Err(e) if degrades(&e) => dropped.push(RungDrop {
            rung: Rung::FullSparse,
            cause: e.to_string(),
        }),
        Err(e) => return Err(e.into()),
    }

    // Rung 2: first cascade stage, unbudgeted — always completes.
    let first = model
        .stages()
        .first()
        .ok_or_else(|| ServeError::Load("model has no stages".to_string()))?;
    let probs = first.predict_proba(t, x)?;
    Ok((
        LadderResult {
            probs,
            rung: Rung::FirstStage,
            dropped,
        },
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_core::{Gcn, GcnConfig, GraphData};
    use gcnt_netlist::{generate, GeneratorConfig};
    use gcnt_nn::seeded_rng;

    fn fixture() -> (GraphData, MultiStageGcn) {
        let net = generate(&GeneratorConfig::sized("ladder", 5, 150));
        let data = GraphData::from_netlist(&net, None).unwrap();
        let cfg = GcnConfig {
            embed_dims: vec![6, 6],
            fc_dims: vec![6],
            ..GcnConfig::default()
        };
        let stages = vec![
            Gcn::new(&cfg, &mut seeded_rng(21)),
            Gcn::new(&cfg, &mut seeded_rng(22)),
        ];
        (data, MultiStageGcn::from_stages(stages, 0.5))
    }

    #[test]
    fn unconstrained_request_stays_on_the_top_rung() {
        let (data, model) = fixture();
        let out = classify_with_ladder(
            &model,
            &data.tensors,
            &data.features,
            &Budget::unlimited(),
            false,
        )
        .unwrap();
        assert_eq!(out.rung, Rung::Incremental);
        assert!(out.dropped.is_empty());
        let full = model.predict_proba(&data.tensors, &data.features).unwrap();
        assert_eq!(out.probs, full, "top rung is full quality");
    }

    #[test]
    fn poisoned_cache_steps_down_to_full_sparse() {
        let (data, model) = fixture();
        let out = classify_with_ladder(
            &model,
            &data.tensors,
            &data.features,
            &Budget::unlimited(),
            true,
        )
        .unwrap();
        assert_eq!(out.rung, Rung::FullSparse);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].rung, Rung::Incremental);
        assert!(out.dropped[0].cause.contains("stale"), "{:?}", out.dropped);
        let full = model.predict_proba(&data.tensors, &data.features).unwrap();
        assert_eq!(out.probs, full, "full-sparse rung is full quality too");
    }

    #[test]
    fn deadline_pressure_reaches_the_floor_but_always_completes() {
        let (data, model) = fixture();
        // A budget too small for any full pass: both upper rungs abandon,
        // the unbudgeted floor completes. Zero drops.
        let budget = Budget::with_cap(3);
        let out =
            classify_with_ladder(&model, &data.tensors, &data.features, &budget, false).unwrap();
        assert_eq!(out.rung, Rung::FirstStage);
        assert_eq!(out.dropped.len(), 2);
        assert_eq!(out.probs.len(), data.node_count());
        let stage0 = model.stages()[0]
            .predict_proba(&data.tensors, &data.features)
            .unwrap();
        assert_eq!(out.probs, stage0);
    }

    #[test]
    fn rung_is_monotone_in_the_deadline() {
        let (data, model) = fixture();
        let mut last_depth: Option<usize> = None;
        // Sweep deadlines from generous to zero: the selected rung may
        // only move down the ladder.
        let full_rows: u64 = model
            .stages()
            .iter()
            .map(|g| g.depth() as u64 * data.node_count() as u64)
            .sum();
        for cap in [full_rows * 4, full_rows, full_rows / 2, 1] {
            let out = classify_with_ladder(
                &model,
                &data.tensors,
                &data.features,
                &Budget::with_cap(cap),
                false,
            )
            .unwrap();
            // Tighter deadline => same or deeper rung.
            if let Some(last) = last_depth {
                assert!(
                    out.rung.depth() >= last,
                    "cap {cap} picked {} after a looser cap picked depth {last}",
                    out.rung
                );
            }
            last_depth = Some(out.rung.depth());
        }
    }

    #[test]
    fn partitioned_backend_answers_bitwise_like_serial_on_every_rung() {
        let (data, model) = fixture();
        for (cap, poison) in [(u64::MAX, false), (u64::MAX, true), (3, false)] {
            let budget = Budget::with_cap(cap);
            let mut backend = MatrixBackend::partitioned(&data.tensors, 3).unwrap();
            let (backed, _) = classify_with_ladder_backed(
                &model,
                &data.tensors,
                &data.features,
                &budget,
                poison,
                &mut backend,
            )
            .unwrap();
            let serial = classify_with_ladder(
                &model,
                &data.tensors,
                &data.features,
                &Budget::with_cap(cap),
                poison,
            )
            .unwrap();
            assert_eq!(backed.rung, serial.rung, "cap {cap} poison {poison}");
            assert_eq!(backed.probs, serial.probs, "cap {cap} poison {poison}");
        }
    }

    #[test]
    fn cancellation_aborts_instead_of_degrading() {
        let (data, model) = fixture();
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let err = classify_with_ladder(&model, &data.tensors, &data.features, &budget, false)
            .unwrap_err();
        assert!(matches!(err, ServeError::Tensor(TensorError::Cancelled)));
    }
}
