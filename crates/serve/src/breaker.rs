//! Retry with exponential backoff and a deterministic circuit breaker,
//! guarding model/design (re)loading.
//!
//! The two compose: [`RetryPolicy`] absorbs *transient* faults (a file
//! mid-rename, a flaky mount) by retrying one load a few times with
//! exponentially growing pauses; [`CircuitBreaker`] absorbs *persistent*
//! faults (a deleted model, a corrupt design) by failing fast once several
//! consecutive loads-with-retries have failed, so a hot request path stops
//! hammering a dead resource. The breaker is count-based rather than
//! clock-based — it half-opens after a fixed number of rejected calls —
//! which keeps every test of it deterministic.

use crate::error::ServeError;

/// Retry policy: how often to re-attempt a failing load, and the base
/// pause that doubles between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (clamped to at least 1).
    pub max_attempts: u32,
    /// Pause before the second attempt, in milliseconds; doubles each
    /// further attempt. `0` disables sleeping (used by tests).
    pub base_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 20,
        }
    }
}

impl RetryPolicy {
    /// Runs `op` until it succeeds or the attempts are exhausted, pausing
    /// `base_delay_ms * 2^i` between attempts.
    ///
    /// # Errors
    ///
    /// [`ServeError::Load`] carrying the final attempt's error.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, String>) -> Result<T, ServeError> {
        let attempts = self.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 && self.base_delay_ms > 0 {
                let pause = self
                    .base_delay_ms
                    .saturating_mul(1 << (attempt - 1).min(16));
                std::thread::sleep(std::time::Duration::from_millis(pause));
            }
            if attempt > 0 {
                gcnt_obs::global().incr(gcnt_obs::counters::SERVE_RETRY_ATTEMPTS);
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
        }
        Err(ServeError::Load(last))
    }
}

/// Circuit breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Calls rejected while open before one probe call is admitted
    /// (half-open).
    pub cooldown_calls: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Normal operation; counts consecutive failures.
    Closed { failures: u32 },
    /// Failing fast; counts rejected calls toward the cooldown.
    Open { rejected: u32 },
    /// One probe call is in flight; its result decides open vs. closed.
    HalfOpen,
}

/// A deterministic, count-based circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds (clamped to at least 1).
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg: BreakerConfig {
                failure_threshold: cfg.failure_threshold.max(1),
                cooldown_calls: cfg.cooldown_calls.max(1),
            },
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Whether the breaker is currently failing fast.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Asks to perform a guarded call. `Ok(())` admits the call — the
    /// caller must then report [`CircuitBreaker::on_success`] or
    /// [`CircuitBreaker::on_failure`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BreakerOpen`] while the breaker is open; after
    /// `cooldown_calls` rejections the next request is admitted as the
    /// half-open probe.
    pub fn admit(&mut self) -> Result<(), ServeError> {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { rejected } => {
                if rejected + 1 >= self.cfg.cooldown_calls {
                    self.state = BreakerState::HalfOpen;
                    gcnt_obs::global().incr(gcnt_obs::counters::SERVE_BREAKER_HALF_OPEN);
                    return Err(ServeError::BreakerOpen {
                        probes_until_half_open: 0,
                    });
                }
                self.state = BreakerState::Open {
                    rejected: rejected + 1,
                };
                Err(ServeError::BreakerOpen {
                    probes_until_half_open: self.cfg.cooldown_calls - rejected - 1,
                })
            }
        }
    }

    /// Reports that an admitted call succeeded; closes the breaker.
    pub fn on_success(&mut self) {
        if !matches!(self.state, BreakerState::Closed { .. }) {
            gcnt_obs::global().incr(gcnt_obs::counters::SERVE_BREAKER_CLOSED);
        }
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// Reports that an admitted call failed. A half-open probe failure
    /// re-opens immediately; in the closed state the breaker opens once
    /// `failure_threshold` consecutive failures accumulate.
    pub fn on_failure(&mut self) {
        self.state = match self.state {
            BreakerState::Closed { failures } if failures + 1 < self.cfg.failure_threshold => {
                BreakerState::Closed {
                    failures: failures + 1,
                }
            }
            _ => {
                gcnt_obs::global().incr(gcnt_obs::counters::SERVE_BREAKER_OPENED);
                BreakerState::Open { rejected: 0 }
            }
        };
    }

    /// Runs `op` under the breaker *and* the retry policy: an open breaker
    /// fails fast, otherwise `op` runs with retries and its final result
    /// is reported back to the breaker.
    ///
    /// # Errors
    ///
    /// [`ServeError::BreakerOpen`] when failing fast, otherwise whatever
    /// [`RetryPolicy::run`] returns.
    pub fn call<T>(
        &mut self,
        retry: &RetryPolicy,
        op: impl FnMut() -> Result<T, String>,
    ) -> Result<T, ServeError> {
        self.admit()?;
        match retry.run(op) {
            Ok(v) => {
                self.on_success();
                Ok(v)
            }
            Err(e) => {
                self.on_failure();
                Err(e)
            }
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_sleep() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
        }
    }

    #[test]
    fn retry_returns_first_success() {
        let mut calls = 0;
        let out = no_sleep().run(|| {
            calls += 1;
            if calls < 3 {
                Err(format!("transient {calls}"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_exhaustion_reports_last_error() {
        let mut calls = 0;
        let err = no_sleep()
            .run::<()>(|| {
                calls += 1;
                Err(format!("boom {calls}"))
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(matches!(err, ServeError::Load(msg) if msg == "boom 3"));
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_calls: 2,
        });
        // Two consecutive failures trip it open.
        b.admit().unwrap();
        b.on_failure();
        assert!(!b.is_open());
        b.admit().unwrap();
        b.on_failure();
        assert!(b.is_open());
        // Open: reject `cooldown_calls` requests, then admit a probe.
        assert!(matches!(
            b.admit(),
            Err(ServeError::BreakerOpen {
                probes_until_half_open: 1
            })
        ));
        assert!(matches!(
            b.admit(),
            Err(ServeError::BreakerOpen {
                probes_until_half_open: 0
            })
        ));
        b.admit().unwrap(); // the half-open probe
        b.on_success();
        assert!(!b.is_open());
        b.admit().unwrap();
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_calls: 1,
        });
        b.admit().unwrap();
        b.on_failure();
        assert!(b.is_open());
        assert!(b.admit().is_err()); // rejection satisfies the cooldown
        b.admit().unwrap(); // probe
        b.on_failure();
        assert!(b.is_open());
    }

    #[test]
    fn call_composes_breaker_and_retry() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_calls: 1,
        });
        let retry = no_sleep();
        // 3 retry attempts inside one guarded call, then the breaker opens.
        let mut calls = 0;
        assert!(b
            .call::<()>(&retry, || {
                calls += 1;
                Err("gone".to_string())
            })
            .is_err());
        assert_eq!(calls, 3);
        assert!(b.is_open());
        // Failing fast does not touch the operation.
        assert!(matches!(
            b.call::<()>(&retry, || panic!("must not run")),
            Err(ServeError::BreakerOpen { .. })
        ));
        // The probe succeeds and the breaker closes again.
        assert_eq!(b.call(&retry, || Ok(7)).unwrap(), 7);
        assert!(!b.is_open());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_calls: 1,
        });
        b.admit().unwrap();
        b.on_failure();
        b.admit().unwrap();
        b.on_success();
        b.admit().unwrap();
        b.on_failure();
        assert!(!b.is_open(), "streak must reset after a success");
    }
}
