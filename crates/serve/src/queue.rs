//! A bounded multi-producer request queue with non-blocking admission.
//!
//! Admission control is the service's memory-safety valve: a producer that
//! cannot enqueue gets [`ServeError::Overloaded`] *immediately* instead of
//! blocking or growing an unbounded backlog, so a request storm cannot OOM
//! the process. The consumer side blocks — the single worker drains the
//! queue at its own pace.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::error::ServeError;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Shared<T> {
    /// Locks the state, recovering from poisoning. Every mutation under
    /// this lock is a single `VecDeque` op or a bool store — a producer
    /// that panicked mid-critical-section cannot leave the state torn,
    /// so propagating the poison would only turn one dead request into
    /// a dead service.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bounded FIFO queue shared between request producers and the worker.
pub struct BoundedQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` pending items
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                }),
                ready: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Pending items right now.
    pub fn len(&self) -> usize {
        self.shared.lock().items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. A full or closed queue rejects with
    /// [`ServeError::Overloaded`] / [`ServeError::WorkerGone`] and hands
    /// the item back untouched.
    ///
    /// # Errors
    ///
    /// See above; the item rides along so the caller can reply to it.
    pub fn try_push(&self, item: T) -> Result<(), (T, ServeError)> {
        let mut state = self.shared.lock();
        if state.closed {
            return Err((item, ServeError::WorkerGone));
        }
        if state.items.len() >= self.shared.capacity {
            gcnt_obs::global().incr(gcnt_obs::counters::SERVE_ADMISSION_REJECTS);
            return Err((
                item,
                ServeError::Overloaded {
                    capacity: self.shared.capacity,
                },
            ));
        }
        state.items.push_back(item);
        let obs = gcnt_obs::global();
        if obs.is_enabled() {
            let depth = state.items.len() as f64;
            obs.gauge_set(gcnt_obs::gauges::SERVE_QUEUE_DEPTH, depth);
            obs.gauge_max(gcnt_obs::gauges::SERVE_QUEUE_DEPTH_HIGH_WATER, depth);
        }
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means no item will ever come again.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.shared.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                gcnt_obs::global().gauge_set(
                    gcnt_obs::gauges::SERVE_QUEUE_DEPTH,
                    state.items.len() as f64,
                );
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what is
    /// left before seeing `None`.
    pub fn close(&self) {
        self.shared.lock().closed = true;
        self.shared.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert!(matches!(err, ServeError::Overloaded { capacity: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_drains_in_fifo_order_and_frees_capacity() {
        let q = BoundedQueue::new(1);
        q.try_push(10).unwrap();
        assert_eq!(q.pop(), Some(10));
        q.try_push(11).unwrap();
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(
            q.try_push(2).unwrap_err().1,
            ServeError::WorkerGone
        ));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn consumer_blocks_until_producer_arrives() {
        let q = BoundedQueue::new(1);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }
}
