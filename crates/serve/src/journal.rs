//! Write-ahead journal for long-running flow jobs.
//!
//! # Format (version 1)
//!
//! A journal is a plain-text, append-only file of JSON lines:
//!
//! ```text
//! {"version":1,"design":"...","design_checksum":"<16 hex>","flow_checksum":"<16 hex>"}
//! {"seq":0,"checksum":"<16 hex>","payload":{<BatchRecord>}}
//! {"seq":1,"checksum":"<16 hex>","payload":{<BatchRecord>}}
//! ...
//! ```
//!
//! The first line is the header: the format version plus fingerprints of
//! the *original* design and the flow configuration, so a journal can
//! never be replayed against the wrong job. Every further line is one
//! committed [`BatchRecord`] with its sequence number and an FNV-1a
//! checksum of the payload JSON. Records are appended with `fsync` per
//! record — a record on disk is a promise that the batch it describes is
//! committed and consistent.
//!
//! # Recovery
//!
//! [`FlowJournal::open`] recovers a journal left behind by a killed
//! process. The reader is *torn-tail tolerant*: a final line that does not
//! parse — or parses but fails its checksum — is the half-written record
//! of the fatal moment, and is discarded (the file is atomically rewritten
//! without it, via the same temp + fsync + rename discipline as
//! `runtime::checkpoint`). Any damage *before* the tail is real corruption
//! and refuses recovery: the recovered record stream is validated with
//! [`gcnt_lint::lint_journal_records`] (`JN001` checksum integrity,
//! `JN002` sequence continuity) before a single batch is replayed.
//!
//! # Versioning
//!
//! [`JOURNAL_VERSION`] is bumped on any breaking change to the line
//! format; a reader refuses versions it does not know rather than guess.
//! Version 1 is the initial format described above.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gcnt_dft::flow::{BatchRecord, FlowConfig};
use gcnt_lint::{lint_journal_records, JournalRecordMeta};
use gcnt_netlist::{format, Netlist};
use gcnt_runtime::{atomic_write, fnv1a64};

use crate::error::ServeError;

/// Version of the journal line format this build reads and writes.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal's first line: format version plus job identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version; see [`JOURNAL_VERSION`].
    pub version: u32,
    /// Name of the design the job runs on.
    pub design: String,
    /// FNV-1a checksum (hex) of the original design's text form.
    pub design_checksum: String,
    /// FNV-1a checksum (hex) of the flow configuration JSON.
    pub flow_checksum: String,
}

impl JournalHeader {
    /// Fingerprints a job: the *original* (pre-flow) design plus its flow
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the flow configuration cannot be
    /// serialized for fingerprinting.
    pub fn describe(net: &Netlist, cfg: &FlowConfig) -> Result<Self, ServeError> {
        let cfg_json = serde_json::to_string(cfg)
            .map_err(|e| ServeError::Journal(format!("flow config serialization: {e}")))?;
        Ok(JournalHeader {
            version: JOURNAL_VERSION,
            design: net.name().to_string(),
            design_checksum: checksum_hex(format::write(net).as_bytes()),
            flow_checksum: checksum_hex(cfg_json.as_bytes()),
        })
    }
}

/// One journal line after the header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct RecordLine {
    seq: u64,
    checksum: String,
    payload: BatchRecord,
}

fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

fn payload_checksum(rec: &BatchRecord) -> Result<String, ServeError> {
    let json = serde_json::to_string(rec)
        .map_err(|e| ServeError::Journal(format!("record serialization: {e}")))?;
    Ok(checksum_hex(json.as_bytes()))
}

/// An open, append-ready write-ahead journal.
#[derive(Debug)]
pub struct FlowJournal {
    file: fs::File,
    path: PathBuf,
    next_seq: u64,
}

/// The result of opening a journal: the append handle plus whatever a
/// previous (possibly killed) run left in it.
#[derive(Debug)]
pub struct Recovered {
    /// The journal, positioned to append the next record.
    pub journal: FlowJournal,
    /// Verified records of the previous run, in sequence order; empty for
    /// a fresh journal.
    pub records: Vec<BatchRecord>,
    /// Whether a torn (half-written) final line was discarded.
    pub dropped_torn_tail: bool,
}

impl FlowJournal {
    /// Opens (or creates) the journal at `path` for the job described by
    /// `header`, recovering and verifying any records a previous run
    /// journaled.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the file cannot be read or written, the
    /// header names a different job or an unsupported version, or the
    /// record stream fails `JN001`/`JN002` validation.
    pub fn open(path: &Path, header: &JournalHeader) -> Result<Recovered, ServeError> {
        let io = |e: std::io::Error| ServeError::Journal(format!("{}: {e}", path.display()));
        let (records, dropped_torn_tail) = if path.exists() {
            let text = fs::read_to_string(path).map_err(io)?;
            let (records, torn) = Self::recover(path, header, &text)?;
            if torn {
                // Rewrite without the torn line so the file is clean JSON
                // lines again before anything is appended after it.
                let mut clean = header_line(header)?;
                for (seq, rec) in records.iter().enumerate() {
                    clean.push_str(&record_line(seq as u64, rec)?);
                }
                atomic_write(path, clean.as_bytes())
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
            }
            (records, torn)
        } else {
            let first = header_line(header)?;
            atomic_write(path, first.as_bytes()).map_err(|e| ServeError::Journal(e.to_string()))?;
            (Vec::new(), false)
        };
        let file = fs::OpenOptions::new().append(true).open(path).map_err(io)?;
        Ok(Recovered {
            journal: FlowJournal {
                file,
                path: path.to_path_buf(),
                next_seq: records.len() as u64,
            },
            records,
            dropped_torn_tail,
        })
    }

    /// Parses and verifies a journal's text, tolerating a torn tail.
    fn recover(
        path: &Path,
        header: &JournalHeader,
        text: &str,
    ) -> Result<(Vec<BatchRecord>, bool), ServeError> {
        let bad = |what: String| ServeError::Journal(format!("{}: {what}", path.display()));
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| bad("empty journal file (missing header)".to_string()))?;
        let stored: JournalHeader = serde_json::from_str(first)
            .map_err(|e| bad(format!("unreadable journal header: {e}")))?;
        if stored.version != JOURNAL_VERSION {
            return Err(bad(format!(
                "journal format version {} is not supported (this build reads version {JOURNAL_VERSION})",
                stored.version
            )));
        }
        if stored != *header {
            return Err(bad(format!(
                "journal belongs to a different job (design `{}`, checksums {}/{})",
                stored.design, stored.design_checksum, stored.flow_checksum
            )));
        }

        let lines: Vec<&str> = lines.collect();
        let mut parsed: Vec<RecordLine> = Vec::with_capacity(lines.len());
        let mut torn = false;
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<RecordLine>(line) {
                Ok(rec) => parsed.push(rec),
                // Only the final line may be torn; earlier damage is real.
                Err(e) if i + 1 == lines.len() => {
                    let _ = e;
                    torn = true;
                }
                Err(e) => return Err(bad(format!("unreadable record at line {}: {e}", i + 2))),
            }
        }
        // A complete-looking final line whose checksum fails is the same
        // fatal moment: the write was cut inside the payload.
        if !torn {
            if let Some(last) = parsed.last() {
                if payload_checksum(&last.payload)? != last.checksum {
                    parsed.pop();
                    torn = true;
                }
            }
        }

        let mut metas: Vec<JournalRecordMeta> = Vec::with_capacity(parsed.len());
        for r in &parsed {
            metas.push(JournalRecordMeta {
                seq: r.seq,
                stored_checksum: r.checksum.clone(),
                computed_checksum: payload_checksum(&r.payload)?,
            });
        }
        let report = lint_journal_records(&path.display().to_string(), &metas);
        if report.has_errors() {
            return Err(bad(format!("journal failed validation:\n{report}")));
        }
        Ok((parsed.into_iter().map(|r| r.payload).collect(), torn))
    }

    /// Appends one committed batch and fsyncs it to disk; returns the
    /// record's sequence number.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the write or sync fails; the flow must
    /// then stop, because further batches would outrun the journal.
    pub fn append(&mut self, rec: &BatchRecord) -> Result<u64, ServeError> {
        let io = |e: std::io::Error| ServeError::Journal(format!("{}: {e}", self.path.display()));
        let seq = self.next_seq;
        let line = record_line(seq, rec)?;
        let fsync_span = gcnt_obs::span(gcnt_obs::histograms::SERVE_JOURNAL_FSYNC_NS);
        let write = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_all());
        if let Err(e) = write {
            fsync_span.cancel();
            return Err(io(e));
        }
        fsync_span.finish();
        gcnt_obs::global().incr(gcnt_obs::counters::SERVE_JOURNAL_APPENDS);
        self.next_seq += 1;
        Ok(seq)
    }

    /// Sequence number the next appended record will get (= records on
    /// disk).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_line(header: &JournalHeader) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(header)
        .map_err(|e| ServeError::Journal(format!("header serialization: {e}")))?;
    line.push('\n');
    Ok(line)
}

fn record_line(seq: u64, rec: &BatchRecord) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(&RecordLine {
        seq,
        checksum: payload_checksum(rec)?,
        payload: rec.clone(),
    })
    .map_err(|e| ServeError::Journal(format!("record serialization: {e}")))?;
    line.push('\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_dft::flow::InferenceStats;
    use gcnt_netlist::{generate, GeneratorConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-serve-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir.join("job.wal")
    }

    fn fixture() -> (Netlist, FlowConfig, JournalHeader) {
        let net = generate(&GeneratorConfig::sized("journal", 3, 120));
        let cfg = FlowConfig::default();
        let header = JournalHeader::describe(&net, &cfg).unwrap();
        (net, cfg, header)
    }

    fn record(iteration: usize) -> BatchRecord {
        BatchRecord {
            iteration,
            positives: 5 - iteration,
            inserted: vec![],
            skipped: vec![],
            converged: false,
            stats_after: InferenceStats {
                rows_computed: 10 * iteration as u64,
                rows_full: 20 * iteration as u64,
                inferences: iteration as u64,
            },
        }
    }

    #[test]
    fn journal_round_trips_across_reopen() {
        let path = temp_journal("roundtrip");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        assert!(rec.records.is_empty());
        for i in 0..3 {
            assert_eq!(rec.journal.append(&record(i)).unwrap(), i as u64);
        }
        drop(rec);

        let again = FlowJournal::open(&path, &header).unwrap();
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.records[2], record(2));
        assert!(!again.dropped_torn_tail);
        assert_eq!(again.journal.next_seq(), 3);
    }

    #[test]
    fn torn_tail_is_discarded_and_the_file_healed() {
        let path = temp_journal("torn");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        rec.journal.append(&record(0)).unwrap();
        rec.journal.append(&record(1)).unwrap();
        drop(rec);
        // Simulate a kill mid-write: a half-finished final line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"seq\":2,\"checksum\":\"dead");
        fs::write(&path, &text).unwrap();

        let healed = FlowJournal::open(&path, &header).unwrap();
        assert!(healed.dropped_torn_tail);
        assert_eq!(healed.records.len(), 2);
        // The torn line is gone from disk; appending continues at seq 2.
        assert_eq!(healed.journal.next_seq(), 2);
        drop(healed);
        let clean = FlowJournal::open(&path, &header).unwrap();
        assert!(!clean.dropped_torn_tail);
        assert_eq!(clean.records.len(), 2);
    }

    #[test]
    fn mid_stream_corruption_refuses_recovery() {
        let path = temp_journal("corrupt");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        drop(rec);
        // Flip the middle record's payload: its checksum no longer holds.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"positives\":4", "\"positives\":9", 1);
        assert_ne!(text, tampered, "test must actually tamper");
        fs::write(&path, tampered).unwrap();

        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("JN001"), "{err}");
    }

    #[test]
    fn sequence_gap_refuses_recovery() {
        let path = temp_journal("gap");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        drop(rec);
        // Drop the middle line: seqs 0, 2 — a lost record.
        let text = fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, l)| l)
            .collect();
        fs::write(&path, kept.join("\n") + "\n").unwrap();

        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("JN002"), "{err}");
    }

    #[test]
    fn wrong_job_or_version_is_rejected() {
        let path = temp_journal("identity");
        let (net, cfg, header) = fixture();
        FlowJournal::open(&path, &header).unwrap();

        let other = generate(&GeneratorConfig::sized("other", 4, 100));
        let other_header = JournalHeader::describe(&other, &cfg).unwrap();
        let err = FlowJournal::open(&path, &other_header).unwrap_err();
        assert!(err.to_string().contains("different job"), "{err}");

        let future = JournalHeader {
            version: JOURNAL_VERSION + 1,
            ..JournalHeader::describe(&net, &cfg).unwrap()
        };
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = serde_json::to_string(&future).unwrap();
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }
}
