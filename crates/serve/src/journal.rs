//! Write-ahead journal for long-running flow jobs.
//!
//! # Format (version 1)
//!
//! A journal is a plain-text, append-only file of JSON lines:
//!
//! ```text
//! {"version":1,"design":"...","design_checksum":"<16 hex>","flow_checksum":"<16 hex>"}
//! {"seq":0,"checksum":"<16 hex>","payload":{<BatchRecord>}}
//! {"seq":1,"checksum":"<16 hex>","payload":{<BatchRecord>}}
//! ...
//! ```
//!
//! The first line is the header: the format version plus fingerprints of
//! the *original* design and the flow configuration, so a journal can
//! never be replayed against the wrong job. Every further line is one
//! committed [`BatchRecord`] with its sequence number and an FNV-1a
//! checksum of the payload JSON. Records are appended with `fsync` per
//! record — a record on disk is a promise that the batch it describes is
//! committed and consistent.
//!
//! # Recovery
//!
//! [`FlowJournal::open`] recovers a journal left behind by a killed
//! process. The reader is *torn-tail tolerant*: a final line that does not
//! parse — or parses but fails its checksum — is the half-written record
//! of the fatal moment, and is discarded (the file is atomically rewritten
//! without it, via the same temp + fsync + rename discipline as
//! `runtime::checkpoint`). Any damage *before* the tail is real corruption
//! and refuses recovery: the recovered record stream is validated with
//! [`gcnt_lint::lint_journal_records`] (`JN001` checksum integrity,
//! `JN002` sequence continuity) before a single batch is replayed.
//!
//! # Compaction (opt-in, store-backed)
//!
//! A journal opened with [`FlowJournal::open_with_store`] may be
//! *compacted*: its committed record prefix moves into a checksummed
//! [`gcnt_store::PageStore`] segment, and the file shrinks to the header
//! plus one marker line:
//!
//! ```text
//! {"version":1,"design":...}                                  <- header
//! {"compacted_through":N,"segment_checksum":"<16 hex>"}       <- marker
//! {"seq":N,"checksum":...}                                    <- live tail
//! ```
//!
//! This bounds journal growth: the tail is folded into pages every
//! [`crate::StorePolicy::compact_after_records`] records. The commit
//! order is store-segment first, file-rewrite second, so a kill between
//! the two leaves a *superset* segment plus the still-complete tail —
//! recovery takes the marker's prefix from the segment and the rest from
//! the file, and the next compaction overwrites the stale extra. A
//! compacted journal opened **without** its store refuses loudly (the
//! prefix is unreachable, and guessing would silently lose records).
//!
//! # Versioning
//!
//! [`JOURNAL_VERSION`] is bumped on any breaking change to the line
//! format; a reader refuses versions it does not know rather than guess.
//! Version 1 is the initial format described above.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gcnt_dft::flow::{BatchRecord, FlowConfig};
use gcnt_lint::{
    lint_journal_growth, lint_journal_records, JournalCaps, JournalRecordMeta, LintReport,
};
use gcnt_netlist::{format, Netlist};
use gcnt_runtime::{atomic_write, fnv1a64, FaultPlan};
use gcnt_store::{PageStore, SegmentKey};

use crate::error::ServeError;

/// Version of the journal line format this build reads and writes.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal's first line: format version plus job identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version; see [`JOURNAL_VERSION`].
    pub version: u32,
    /// Name of the design the job runs on.
    pub design: String,
    /// FNV-1a checksum (hex) of the original design's text form.
    pub design_checksum: String,
    /// FNV-1a checksum (hex) of the flow configuration JSON.
    pub flow_checksum: String,
}

impl JournalHeader {
    /// Fingerprints a job: the *original* (pre-flow) design plus its flow
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the flow configuration cannot be
    /// serialized for fingerprinting.
    pub fn describe(net: &Netlist, cfg: &FlowConfig) -> Result<Self, ServeError> {
        let cfg_json = serde_json::to_string(cfg)
            .map_err(|e| ServeError::Journal(format!("flow config serialization: {e}")))?;
        Ok(JournalHeader {
            version: JOURNAL_VERSION,
            design: net.name().to_string(),
            design_checksum: checksum_hex(format::write(net).as_bytes()),
            flow_checksum: checksum_hex(cfg_json.as_bytes()),
        })
    }
}

/// One journal line after the header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct RecordLine {
    seq: u64,
    checksum: String,
    payload: BatchRecord,
}

/// The marker line a compaction leaves behind: records `0..compacted_through`
/// live in the store segment whose first `compacted_through` lines hash to
/// `segment_checksum`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CompactionMarker {
    compacted_through: u64,
    segment_checksum: String,
}

/// Segment kind under which a journal's compacted prefix is stored.
pub const JOURNAL_SEGMENT_KIND: &str = "journal";

/// The store key of a journal's compacted prefix. `start`/`end` are fixed
/// at zero: the authoritative record count is the marker's
/// `compacted_through`, which lets an interrupted compaction leave a
/// superset segment behind without changing the key.
fn journal_segment_key(header: &JournalHeader) -> SegmentKey {
    SegmentKey {
        design: format!("{}-{}", header.design_checksum, header.flow_checksum),
        kind: JOURNAL_SEGMENT_KIND.to_string(),
        generation: 0,
        start: 0,
        end: 0,
    }
}

fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

fn payload_checksum(rec: &BatchRecord) -> Result<String, ServeError> {
    let json = serde_json::to_string(rec)
        .map_err(|e| ServeError::Journal(format!("record serialization: {e}")))?;
    Ok(checksum_hex(json.as_bytes()))
}

/// An open, append-ready write-ahead journal.
#[derive(Debug)]
pub struct FlowJournal {
    file: fs::File,
    path: PathBuf,
    next_seq: u64,
    /// On-disk size of the journal file, kept current across appends and
    /// compactions (feeds the `gcnt_serve_journal_bytes` gauge and JN003).
    bytes: u64,
    /// Present iff the journal was opened with a store; plain journals
    /// never compact and never buffer tail lines.
    compaction: Option<CompactionState>,
}

/// Compaction bookkeeping for a store-backed journal.
#[derive(Debug)]
struct CompactionState {
    header: JournalHeader,
    /// Records already folded into the store segment.
    compacted_through: u64,
    /// Serialized record lines appended (or recovered) since the last
    /// compaction — exactly what the next compaction folds.
    tail_lines: Vec<String>,
}

/// The result of opening a journal: the append handle plus whatever a
/// previous (possibly killed) run left in it.
#[derive(Debug)]
pub struct Recovered {
    /// The journal, positioned to append the next record.
    pub journal: FlowJournal,
    /// Verified records of the previous run, in sequence order; empty for
    /// a fresh journal.
    pub records: Vec<BatchRecord>,
    /// Whether a torn (half-written) final line was discarded.
    pub dropped_torn_tail: bool,
}

impl FlowJournal {
    /// Opens (or creates) the journal at `path` for the job described by
    /// `header`, recovering and verifying any records a previous run
    /// journaled.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the file cannot be read or written, the
    /// header names a different job or an unsupported version, or the
    /// record stream fails `JN001`/`JN002` validation.
    pub fn open(path: &Path, header: &JournalHeader) -> Result<Recovered, ServeError> {
        let io = |e: std::io::Error| ServeError::Journal(format!("{}: {e}", path.display()));
        let (records, dropped_torn_tail) = if path.exists() {
            let text = fs::read_to_string(path).map_err(io)?;
            let (records, torn) = Self::recover(path, header, &text)?;
            if torn {
                // Rewrite without the torn line so the file is clean JSON
                // lines again before anything is appended after it.
                let mut clean = header_line(header)?;
                for (seq, rec) in records.iter().enumerate() {
                    clean.push_str(&record_line(seq as u64, rec)?);
                }
                atomic_write(path, clean.as_bytes())
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
            }
            (records, torn)
        } else {
            let first = header_line(header)?;
            atomic_write(path, first.as_bytes()).map_err(|e| ServeError::Journal(e.to_string()))?;
            (Vec::new(), false)
        };
        let file = fs::OpenOptions::new().append(true).open(path).map_err(io)?;
        let bytes = fs::metadata(path).map_err(io)?.len();
        let journal = FlowJournal {
            file,
            path: path.to_path_buf(),
            next_seq: records.len() as u64,
            bytes,
            compaction: None,
        };
        journal.publish_gauges();
        Ok(Recovered {
            journal,
            records,
            dropped_torn_tail,
        })
    }

    /// Opens (or creates) the journal with a backing page store, enabling
    /// compaction: on a compacted journal, the marker's record prefix is
    /// loaded back out of the store's checksummed segment and verified
    /// together with the file's live tail.
    ///
    /// # Errors
    ///
    /// Everything [`FlowJournal::open`] raises, plus
    /// [`ServeError::Store`] if the compacted prefix is missing from the
    /// store, fails its checksums, or disagrees with the marker.
    pub fn open_with_store(
        path: &Path,
        header: &JournalHeader,
        store: &mut PageStore,
    ) -> Result<Recovered, ServeError> {
        let io = |e: std::io::Error| ServeError::Journal(format!("{}: {e}", path.display()));
        let bad = |what: String| ServeError::Journal(format!("{}: {what}", path.display()));
        if !path.exists() {
            let first = header_line(header)?;
            atomic_write(path, first.as_bytes()).map_err(|e| ServeError::Journal(e.to_string()))?;
            let file = fs::OpenOptions::new().append(true).open(path).map_err(io)?;
            let journal = FlowJournal {
                file,
                path: path.to_path_buf(),
                next_seq: 0,
                bytes: first.len() as u64,
                compaction: Some(CompactionState {
                    header: header.clone(),
                    compacted_through: 0,
                    tail_lines: Vec::new(),
                }),
            };
            journal.publish_gauges();
            return Ok(Recovered {
                journal,
                records: Vec::new(),
                dropped_torn_tail: false,
            });
        }

        let text = fs::read_to_string(path).map_err(io)?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| bad("empty journal file (missing header)".to_string()))?;
        verify_header(path, header, first)?;
        let rest: Vec<&str> = lines.collect();
        let (marker, tail_raw) = match rest.first() {
            Some(line) => match serde_json::from_str::<CompactionMarker>(line) {
                Ok(m) => (Some(m), &rest[1..]),
                Err(_) => (None, &rest[..]),
            },
            None => (None, &rest[..]),
        };

        // Prefix: the marker's first `compacted_through` segment lines.
        // The segment may hold *more* (a compaction killed between its
        // store commit and the file rewrite); the extra lines are the
        // same records the tail still carries and are simply ignored.
        let mut parsed: Vec<RecordLine> = Vec::new();
        let compacted_through = marker.as_ref().map_or(0, |m| m.compacted_through);
        if let Some(m) = &marker {
            let key = journal_segment_key(header);
            let seg = |what: String| {
                ServeError::Store(format!("journal segment {}: {what}", key.display()))
            };
            let bytes = store
                .get_segment(&key)
                .map_err(|e| seg(e.to_string()))?
                .ok_or_else(|| seg("compacted record prefix is missing from the store".into()))?;
            let seg_text =
                String::from_utf8(bytes).map_err(|e| seg(format!("segment is not UTF-8: {e}")))?;
            let mut prefix = String::new();
            let mut taken = 0u64;
            for line in seg_text.lines().take(m.compacted_through as usize) {
                prefix.push_str(line);
                prefix.push('\n');
                taken += 1;
            }
            if taken < m.compacted_through {
                return Err(seg(format!(
                    "segment holds {taken} record(s), marker promises {}",
                    m.compacted_through
                )));
            }
            if checksum_hex(prefix.as_bytes()) != m.segment_checksum {
                return Err(seg(
                    "compacted prefix does not match the marker checksum".into()
                ));
            }
            for (i, line) in prefix.lines().enumerate() {
                let rec: RecordLine = serde_json::from_str(line)
                    .map_err(|e| seg(format!("unreadable compacted record {i}: {e}")))?;
                parsed.push(rec);
            }
        }

        // Tail: live records in the file, torn-tail tolerant like `open`.
        let mut torn = false;
        for (i, line) in tail_raw.iter().enumerate() {
            match serde_json::from_str::<RecordLine>(line) {
                Ok(rec) => parsed.push(rec),
                Err(e) => {
                    if serde_json::from_str::<CompactionMarker>(line).is_ok() {
                        return Err(bad(
                            "compaction marker after record lines (corrupted journal)".into(),
                        ));
                    }
                    if i + 1 == tail_raw.len() {
                        let _ = e;
                        torn = true;
                    } else {
                        return Err(bad(format!("unreadable record at line {}: {e}", i + 2)));
                    }
                }
            }
        }
        if !torn && parsed.len() as u64 > compacted_through {
            if let Some(last) = parsed.last() {
                if payload_checksum(&last.payload)? != last.checksum {
                    parsed.pop();
                    torn = true;
                }
            }
        }
        validate_records(path, &parsed)?;

        let mut tail_lines = Vec::new();
        for r in parsed.iter().skip(compacted_through as usize) {
            tail_lines.push(record_line(r.seq, &r.payload)?);
        }
        if torn {
            let mut clean = header_line(header)?;
            if let Some(m) = &marker {
                clean.push_str(&marker_line(m)?);
            }
            for line in &tail_lines {
                clean.push_str(line);
            }
            atomic_write(path, clean.as_bytes()).map_err(|e| ServeError::Journal(e.to_string()))?;
        }
        let file = fs::OpenOptions::new().append(true).open(path).map_err(io)?;
        let bytes = fs::metadata(path).map_err(io)?.len();
        let journal = FlowJournal {
            file,
            path: path.to_path_buf(),
            next_seq: parsed.len() as u64,
            bytes,
            compaction: Some(CompactionState {
                header: header.clone(),
                compacted_through,
                tail_lines,
            }),
        };
        journal.publish_gauges();
        Ok(Recovered {
            journal,
            records: parsed.into_iter().map(|r| r.payload).collect(),
            dropped_torn_tail: torn,
        })
    }

    /// Parses and verifies a journal's text, tolerating a torn tail.
    fn recover(
        path: &Path,
        header: &JournalHeader,
        text: &str,
    ) -> Result<(Vec<BatchRecord>, bool), ServeError> {
        let bad = |what: String| ServeError::Journal(format!("{}: {what}", path.display()));
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| bad("empty journal file (missing header)".to_string()))?;
        verify_header(path, header, first)?;

        let lines: Vec<&str> = lines.collect();
        let mut parsed: Vec<RecordLine> = Vec::with_capacity(lines.len());
        let mut torn = false;
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<RecordLine>(line) {
                Ok(rec) => parsed.push(rec),
                Err(e) => {
                    // A compaction marker is NOT a torn tail: the record
                    // prefix lives in a page store this opener was not
                    // given, and treating it as damage would silently
                    // drop committed records.
                    if serde_json::from_str::<CompactionMarker>(line).is_ok() {
                        return Err(bad("journal was compacted into a page store; \
                             open it with its store"
                            .to_string()));
                    }
                    // Only the final line may be torn; earlier damage is
                    // real.
                    if i + 1 == lines.len() {
                        let _ = e;
                        torn = true;
                    } else {
                        return Err(bad(format!("unreadable record at line {}: {e}", i + 2)));
                    }
                }
            }
        }
        // A complete-looking final line whose checksum fails is the same
        // fatal moment: the write was cut inside the payload.
        if !torn {
            if let Some(last) = parsed.last() {
                if payload_checksum(&last.payload)? != last.checksum {
                    parsed.pop();
                    torn = true;
                }
            }
        }
        validate_records(path, &parsed)?;
        Ok((parsed.into_iter().map(|r| r.payload).collect(), torn))
    }

    /// Appends one committed batch and fsyncs it to disk; returns the
    /// record's sequence number.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the write or sync fails; the flow must
    /// then stop, because further batches would outrun the journal.
    pub fn append(&mut self, rec: &BatchRecord) -> Result<u64, ServeError> {
        let io = |e: std::io::Error| ServeError::Journal(format!("{}: {e}", self.path.display()));
        let seq = self.next_seq;
        let line = record_line(seq, rec)?;
        let fsync_span = gcnt_obs::span(gcnt_obs::histograms::SERVE_JOURNAL_FSYNC_NS);
        let write = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_all());
        if let Err(e) = write {
            fsync_span.cancel();
            return Err(io(e));
        }
        fsync_span.finish();
        gcnt_obs::global().incr(gcnt_obs::counters::SERVE_JOURNAL_APPENDS);
        self.next_seq += 1;
        self.bytes += line.len() as u64;
        if let Some(state) = &mut self.compaction {
            state.tail_lines.push(line);
        }
        self.publish_gauges();
        Ok(seq)
    }

    /// Folds every live tail record into the backing store's journal
    /// segment and shrinks the file to header + marker; returns how many
    /// records were folded (0 if the tail was already empty).
    ///
    /// Commit order is segment-then-file: the store's segment (its own
    /// fsync + metadata commit) lands before the file rewrite, and `plan`
    /// may inject a deterministic `kill -9` *between* the two — the
    /// crash-window [`FlowJournal::open_with_store`] recovers from.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] if the journal was opened without a store or
    /// the segment cannot be read/written (including injected disk-full);
    /// [`ServeError::Journal`] if the file rewrite fails. On error the
    /// journal file is untouched and still replayable.
    pub fn compact_into(
        &mut self,
        store: &mut PageStore,
        plan: &FaultPlan,
    ) -> Result<u64, ServeError> {
        let state = self.compaction.as_mut().ok_or_else(|| {
            ServeError::Store("journal was opened without a store; cannot compact".to_string())
        })?;
        if state.tail_lines.is_empty() {
            return Ok(0);
        }
        let key = journal_segment_key(&state.header);
        let seg =
            |what: String| ServeError::Store(format!("journal segment {}: {what}", key.display()));
        // Prefix already in the store (first `compacted_through` lines;
        // anything past that is leftovers of an interrupted compaction).
        let mut segment = String::new();
        if state.compacted_through > 0 {
            let bytes = store
                .get_segment(&key)
                .map_err(|e| seg(e.to_string()))?
                .ok_or_else(|| seg("compacted record prefix is missing from the store".into()))?;
            let text =
                String::from_utf8(bytes).map_err(|e| seg(format!("segment is not UTF-8: {e}")))?;
            let mut taken = 0u64;
            for line in text.lines().take(state.compacted_through as usize) {
                segment.push_str(line);
                segment.push('\n');
                taken += 1;
            }
            if taken < state.compacted_through {
                return Err(seg(format!(
                    "segment holds {taken} record(s), journal expects {}",
                    state.compacted_through
                )));
            }
        }
        for line in &state.tail_lines {
            segment.push_str(line);
        }
        let folded = state.tail_lines.len() as u64;
        let new_through = self.next_seq;

        // 1. Commit the grown segment (fsynced pages + metadata rename).
        store
            .put_segment(&key, segment.as_bytes())
            .map_err(|e| seg(e.to_string()))?;
        // 2. The injected crash window: segment committed, file not yet
        //    rewritten. A real kill here leaves the full tail in the file
        //    and a superset segment in the store — both recoverable.
        if plan.should_kill_mid_compaction() {
            std::process::abort();
        }
        // 3. Shrink the file to header + marker, atomically.
        let marker = CompactionMarker {
            compacted_through: new_through,
            segment_checksum: checksum_hex(segment.as_bytes()),
        };
        let mut clean = header_line(&state.header)?;
        clean.push_str(&marker_line(&marker)?);
        atomic_write(&self.path, clean.as_bytes())
            .map_err(|e| ServeError::Journal(e.to_string()))?;
        // 4. The rename replaced the inode under our append handle —
        //    reopen so future appends land in the live file.
        self.file = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| ServeError::Journal(format!("{}: {e}", self.path.display())))?;
        state.compacted_through = new_through;
        state.tail_lines.clear();
        self.bytes = clean.len() as u64;
        gcnt_obs::global().observe(gcnt_obs::histograms::STORE_COMPACTION_RECORDS, folded);
        self.publish_gauges();
        Ok(folded)
    }

    /// Sequence number the next appended record will get (= committed
    /// records, on disk and in the store combined).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records currently living in the journal *file* (the compaction
    /// trigger); equals [`FlowJournal::next_seq`] for plain journals.
    pub fn live_records(&self) -> u64 {
        self.next_seq - self.compacted_through()
    }

    /// Records already folded into the backing store (0 for plain
    /// journals).
    pub fn compacted_through(&self) -> u64 {
        self.compaction.as_ref().map_or(0, |s| s.compacted_through)
    }

    /// Current on-disk size of the journal file.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Checks the journal's live size against growth caps (`JN003`).
    pub fn growth_report(&self, caps: &JournalCaps) -> LintReport {
        lint_journal_growth(
            &self.path.display().to_string(),
            self.live_records(),
            self.bytes,
            caps,
        )
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn publish_gauges(&self) {
        let obs = gcnt_obs::global();
        obs.gauge_set(
            gcnt_obs::gauges::SERVE_JOURNAL_RECORDS,
            self.live_records() as f64,
        );
        obs.gauge_set(gcnt_obs::gauges::SERVE_JOURNAL_BYTES, self.bytes as f64);
    }
}

/// Checks a journal's first line against the expected job identity.
fn verify_header(path: &Path, header: &JournalHeader, first: &str) -> Result<(), ServeError> {
    let bad = |what: String| ServeError::Journal(format!("{}: {what}", path.display()));
    let stored: JournalHeader =
        serde_json::from_str(first).map_err(|e| bad(format!("unreadable journal header: {e}")))?;
    if stored.version != JOURNAL_VERSION {
        return Err(bad(format!(
            "journal format version {} is not supported (this build reads version {JOURNAL_VERSION})",
            stored.version
        )));
    }
    if stored != *header {
        return Err(bad(format!(
            "journal belongs to a different job (design `{}`, checksums {}/{})",
            stored.design, stored.design_checksum, stored.flow_checksum
        )));
    }
    Ok(())
}

/// Validates a recovered record stream (`JN001` checksums, `JN002`
/// sequence continuity) before a single batch is replayed.
fn validate_records(path: &Path, parsed: &[RecordLine]) -> Result<(), ServeError> {
    let mut metas: Vec<JournalRecordMeta> = Vec::with_capacity(parsed.len());
    for r in parsed {
        metas.push(JournalRecordMeta {
            seq: r.seq,
            stored_checksum: r.checksum.clone(),
            computed_checksum: payload_checksum(&r.payload)?,
        });
    }
    let report = lint_journal_records(&path.display().to_string(), &metas);
    if report.has_errors() {
        return Err(ServeError::Journal(format!(
            "{}: journal failed validation:\n{report}",
            path.display()
        )));
    }
    Ok(())
}

fn header_line(header: &JournalHeader) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(header)
        .map_err(|e| ServeError::Journal(format!("header serialization: {e}")))?;
    line.push('\n');
    Ok(line)
}

fn marker_line(marker: &CompactionMarker) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(marker)
        .map_err(|e| ServeError::Journal(format!("marker serialization: {e}")))?;
    line.push('\n');
    Ok(line)
}

fn record_line(seq: u64, rec: &BatchRecord) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(&RecordLine {
        seq,
        checksum: payload_checksum(rec)?,
        payload: rec.clone(),
    })
    .map_err(|e| ServeError::Journal(format!("record serialization: {e}")))?;
    line.push('\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnt_dft::flow::InferenceStats;
    use gcnt_netlist::{generate, GeneratorConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcnt-serve-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir.join("job.wal")
    }

    fn fixture() -> (Netlist, FlowConfig, JournalHeader) {
        let net = generate(&GeneratorConfig::sized("journal", 3, 120));
        let cfg = FlowConfig::default();
        let header = JournalHeader::describe(&net, &cfg).unwrap();
        (net, cfg, header)
    }

    fn record(iteration: usize) -> BatchRecord {
        BatchRecord {
            iteration,
            positives: 5 - iteration,
            inserted: vec![],
            skipped: vec![],
            converged: false,
            stats_after: InferenceStats {
                rows_computed: 10 * iteration as u64,
                rows_full: 20 * iteration as u64,
                inferences: iteration as u64,
            },
        }
    }

    #[test]
    fn journal_round_trips_across_reopen() {
        let path = temp_journal("roundtrip");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        assert!(rec.records.is_empty());
        for i in 0..3 {
            assert_eq!(rec.journal.append(&record(i)).unwrap(), i as u64);
        }
        drop(rec);

        let again = FlowJournal::open(&path, &header).unwrap();
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.records[2], record(2));
        assert!(!again.dropped_torn_tail);
        assert_eq!(again.journal.next_seq(), 3);
    }

    #[test]
    fn torn_tail_is_discarded_and_the_file_healed() {
        let path = temp_journal("torn");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        rec.journal.append(&record(0)).unwrap();
        rec.journal.append(&record(1)).unwrap();
        drop(rec);
        // Simulate a kill mid-write: a half-finished final line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"seq\":2,\"checksum\":\"dead");
        fs::write(&path, &text).unwrap();

        let healed = FlowJournal::open(&path, &header).unwrap();
        assert!(healed.dropped_torn_tail);
        assert_eq!(healed.records.len(), 2);
        // The torn line is gone from disk; appending continues at seq 2.
        assert_eq!(healed.journal.next_seq(), 2);
        drop(healed);
        let clean = FlowJournal::open(&path, &header).unwrap();
        assert!(!clean.dropped_torn_tail);
        assert_eq!(clean.records.len(), 2);
    }

    #[test]
    fn mid_stream_corruption_refuses_recovery() {
        let path = temp_journal("corrupt");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        drop(rec);
        // Flip the middle record's payload: its checksum no longer holds.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"positives\":4", "\"positives\":9", 1);
        assert_ne!(text, tampered, "test must actually tamper");
        fs::write(&path, tampered).unwrap();

        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("JN001"), "{err}");
    }

    #[test]
    fn sequence_gap_refuses_recovery() {
        let path = temp_journal("gap");
        let (_, _, header) = fixture();
        let mut rec = FlowJournal::open(&path, &header).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        drop(rec);
        // Drop the middle line: seqs 0, 2 — a lost record.
        let text = fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, l)| l)
            .collect();
        fs::write(&path, kept.join("\n") + "\n").unwrap();

        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("JN002"), "{err}");
    }

    fn store_for(path: &Path) -> PageStore {
        let dir = path.parent().expect("journal lives in a directory");
        PageStore::open(dir.join("store")).unwrap()
    }

    #[test]
    fn compaction_bounds_the_file_and_replay_is_complete() {
        let path = temp_journal("compact");
        let (_, _, header) = fixture();
        let mut store = store_for(&path);
        let mut rec = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        let mut max_bytes = 0u64;
        for i in 0..120 {
            rec.journal.append(&record(i % 5)).unwrap();
            if rec.journal.live_records() >= 16 {
                let folded = rec
                    .journal
                    .compact_into(&mut store, &FaultPlan::none())
                    .unwrap();
                assert_eq!(folded, 16);
            }
            max_bytes = max_bytes.max(rec.journal.bytes());
        }
        // The file never outgrows ~one compaction window of records.
        let cap = 16 * 1024;
        assert!(max_bytes < cap, "journal grew to {max_bytes} bytes");
        let caps = JournalCaps {
            max_records: Some(16),
            max_bytes: Some(cap),
        };
        assert!(rec.journal.growth_report(&caps).is_clean(), "under caps");
        assert_eq!(rec.journal.next_seq(), 120);
        assert!(rec.journal.compacted_through() >= 112);
        drop(rec);

        // Reopening with the store replays every record, in order.
        let again = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        assert_eq!(again.records.len(), 120);
        assert!(!again.dropped_torn_tail);
        for (i, r) in again.records.iter().enumerate() {
            assert_eq!(*r, record(i % 5), "record {i}");
        }

        // Opening WITHOUT the store is a loud, typed refusal — the
        // compacted prefix is unreachable, never silently dropped.
        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(matches!(err, ServeError::Journal(_)));
        assert!(err.to_string().contains("open it with its store"), "{err}");
    }

    #[test]
    fn kill_between_segment_commit_and_file_rewrite_recovers() {
        let path = temp_journal("killwindow");
        let (_, _, header) = fixture();
        let mut store = store_for(&path);
        let mut rec = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        for i in 0..4 {
            rec.journal.append(&record(i)).unwrap();
        }
        rec.journal
            .compact_into(&mut store, &FaultPlan::none())
            .unwrap();
        rec.journal.append(&record(4)).unwrap();
        rec.journal.append(&record(5)).unwrap();
        // Snapshot the file as it looks *before* the second compaction's
        // rewrite, then compact (segment now holds all 6 records) and put
        // the stale file back: exactly the kill-between-steps state.
        let stale = fs::read(&path).unwrap();
        rec.journal
            .compact_into(&mut store, &FaultPlan::none())
            .unwrap();
        drop(rec);
        fs::write(&path, &stale).unwrap();

        let recovered = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        assert_eq!(recovered.records.len(), 6, "superset segment + live tail");
        assert_eq!(recovered.journal.compacted_through(), 4);
        let mut journal = recovered.journal;
        // The interrupted compaction simply reruns.
        assert_eq!(
            journal
                .compact_into(&mut store, &FaultPlan::none())
                .unwrap(),
            2
        );
        drop(journal);
        let clean = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        assert_eq!(clean.records.len(), 6);
        assert_eq!(clean.journal.compacted_through(), 6);
    }

    #[test]
    fn torn_tail_after_compaction_is_healed() {
        let path = temp_journal("compact-torn");
        let (_, _, header) = fixture();
        let mut store = store_for(&path);
        let mut rec = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        rec.journal
            .compact_into(&mut store, &FaultPlan::none())
            .unwrap();
        rec.journal.append(&record(3)).unwrap();
        drop(rec);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"seq\":4,\"checksum\":\"dead");
        fs::write(&path, &text).unwrap();

        let healed = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        assert!(healed.dropped_torn_tail);
        assert_eq!(healed.records.len(), 4);
        assert_eq!(healed.journal.next_seq(), 4);
        assert_eq!(healed.journal.live_records(), 1);
        drop(healed);
        let clean = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        assert!(!clean.dropped_torn_tail);
        assert_eq!(clean.records.len(), 4);
    }

    #[test]
    fn missing_journal_segment_is_a_typed_store_error() {
        let path = temp_journal("lost-segment");
        let (_, _, header) = fixture();
        let mut store = store_for(&path);
        let mut rec = FlowJournal::open_with_store(&path, &header, &mut store).unwrap();
        for i in 0..3 {
            rec.journal.append(&record(i)).unwrap();
        }
        rec.journal
            .compact_into(&mut store, &FaultPlan::none())
            .unwrap();
        drop(rec);
        // Lose the store (a different, empty store directory).
        let other_dir = path.parent().unwrap().join("wrong-store");
        let mut empty = PageStore::open(other_dir).unwrap();
        let err = FlowJournal::open_with_store(&path, &header, &mut empty).unwrap_err();
        assert!(matches!(err, ServeError::Store(_)), "{err}");
        assert!(err.to_string().contains("missing from the store"), "{err}");
    }

    #[test]
    fn wrong_job_or_version_is_rejected() {
        let path = temp_journal("identity");
        let (net, cfg, header) = fixture();
        FlowJournal::open(&path, &header).unwrap();

        let other = generate(&GeneratorConfig::sized("other", 4, 100));
        let other_header = JournalHeader::describe(&other, &cfg).unwrap();
        let err = FlowJournal::open(&path, &other_header).unwrap_err();
        assert!(err.to_string().contains("different job"), "{err}");

        let future = JournalHeader {
            version: JOURNAL_VERSION + 1,
            ..JournalHeader::describe(&net, &cfg).unwrap()
        };
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = serde_json::to_string(&future).unwrap();
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = FlowJournal::open(&path, &header).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }
}
