//! Typed errors of the serving layer.

use std::fmt;

use gcnt_dft::flow::FlowError;
use gcnt_tensor::TensorError;

/// Errors produced by the inference/flow service.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue is full
    /// (or fault injection saturated it). The caller should back off and
    /// resubmit; nothing was enqueued and no work was started.
    Overloaded {
        /// The queue's capacity at rejection time.
        capacity: usize,
    },
    /// The circuit breaker around model/design (re)loading is open:
    /// recent loads failed repeatedly, so further attempts are rejected
    /// without touching the failing resource until the cooldown elapses.
    BreakerOpen {
        /// Rejections remaining before the breaker half-opens and admits
        /// a probe load.
        probes_until_half_open: u32,
    },
    /// A model or design load failed even after the retry policy was
    /// exhausted; the message is the last attempt's error.
    Load(String),
    /// The write-ahead journal could not be read, verified, or appended
    /// to.
    Journal(String),
    /// The page store backing journal compaction or warm-restart
    /// embeddings failed in a way that cannot be healed in place —
    /// a missing or corrupt journal segment, a failed commit, or a
    /// full disk. Never silent: anything the store *can* recover
    /// (torn tails, quarantined pages) is handled before this fires.
    Store(String),
    /// A journaled flow job failed. Batches the journal captured before
    /// the failure stay committed; a rerun resumes from them.
    Flow(FlowError),
    /// An inference request failed on the final (unbudgeted) ladder rung —
    /// a real model/graph error, not deadline pressure.
    Tensor(TensorError),
    /// The worker thread behind a [`crate::ServeHandle`] is gone; the
    /// request's reply will never arrive.
    WorkerGone,
    /// The worker thread could not be spawned — OS thread limits or
    /// memory exhaustion at startup.
    Spawn(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "service overloaded: request queue at capacity {capacity}")
            }
            ServeError::BreakerOpen {
                probes_until_half_open,
            } => write!(
                f,
                "circuit breaker open: {probes_until_half_open} rejection(s) until a probe is admitted"
            ),
            ServeError::Load(e) => write!(f, "load failed after retries: {e}"),
            ServeError::Journal(e) => write!(f, "journal error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Flow(e) => write!(f, "flow job failed: {e}"),
            ServeError::Tensor(e) => write!(f, "inference failed: {e}"),
            ServeError::WorkerGone => write!(f, "serve worker thread is gone"),
            ServeError::Spawn(e) => write!(f, "could not start serve worker: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Flow(e) => Some(e),
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<FlowError> for ServeError {
    fn from(e: FlowError) -> Self {
        ServeError::Flow(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Overloaded { capacity: 4 }
            .to_string()
            .contains("capacity 4"));
        assert!(ServeError::BreakerOpen {
            probes_until_half_open: 2
        }
        .to_string()
        .contains("2 rejection(s)"));
        let e = ServeError::Tensor(TensorError::Cancelled);
        assert!(std::error::Error::source(&e).is_some());
    }
}
