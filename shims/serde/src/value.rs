//! The JSON value tree plus its text renderer and parser.

use crate::Error;

/// A JSON number. Integers keep full 64-bit precision (a plain `f64`
/// payload would corrupt `u64` seeds above 2^53).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// A JSON value tree.
///
/// Objects preserve insertion order with a `Vec` of pairs (lookups are
/// linear, which is fine at the field counts serialization meets).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-indented JSON (two spaces).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; it is
                // valid JSON except for integral values ("1.0" is fine).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

impl std::str::FromStr for Value {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; accept lone BMP scalars only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::F(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            Number::I(
                -stripped
                    .parse::<i64>()
                    .map_err(|_| self.err("integer out of range"))?,
            )
        } else {
            Number::U(text.parse().map_err(|_| self.err("integer out of range"))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let compact: Value = v.render().parse().unwrap();
        assert_eq!(&compact, v);
        let pretty: Value = v.render_pretty().parse().unwrap();
        assert_eq!(&pretty, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Number(Number::U(u64::MAX)));
        round_trip(&Value::Number(Number::I(-42)));
        round_trip(&Value::Number(Number::F(0.1)));
        round_trip(&Value::Number(Number::F(1e300)));
        round_trip(&Value::String("he\"ll\\o\n\u{1}\u{1F600}".to_string()));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Value::Array(vec![]));
        round_trip(&Value::Object(vec![]));
        round_trip(&Value::Object(vec![
            ("a".to_string(), Value::Array(vec![Value::Null])),
            (
                "b".to_string(),
                Value::Object(vec![("x".to_string(), Value::Number(Number::F(2.5)))]),
            ),
        ]));
    }

    #[test]
    fn f32_precision_survives() {
        let x = 0.1f32;
        let json = Value::Number(Number::F(x as f64)).render();
        let back: Value = json.parse().unwrap();
        match back {
            Value::Number(n) => assert_eq!(n.as_f64() as f32, x),
            _ => panic!("expected number"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Value>().is_err());
        assert!("{".parse::<Value>().is_err());
        assert!("[1,]".parse::<Value>().is_err());
        assert!("nul".parse::<Value>().is_err());
        assert!("1 2".parse::<Value>().is_err());
    }

    #[test]
    fn integral_float_renders_as_json() {
        // `{:?}` of 1.0f64 is "1.0", which is valid JSON.
        assert_eq!(Value::Number(Number::F(1.0)).render(), "1.0");
    }
}
