//! Offline stand-in for the subset of `serde` + `serde_json` this
//! workspace uses.
//!
//! Instead of upstream serde's visitor architecture, this shim converts
//! values to and from a JSON [`Value`] tree: [`Serialize`] produces a
//! `Value`, [`Deserialize`] consumes one. The derive macros (re-exported
//! from the local `serde_derive` proc-macro crate) generate impls against
//! these traits, following serde's JSON conventions:
//!
//! * named-field structs → objects,
//! * newtype structs → the inner value,
//! * unit enum variants → `"Variant"`,
//! * data-carrying enum variants → `{"Variant": ...}` (externally tagged).
//!
//! Only the features the workspace exercises are implemented — no
//! attributes, no generics in derives, no borrowed deserialization.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a JSON [`Value`].
///
/// The derive macro `#[derive(Serialize)]` implements this.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a JSON [`Value`].
///
/// The derive macro `#[derive(Deserialize)]` implements this.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a field in an object body; used by derived `Deserialize` impls.
///
/// # Errors
///
/// Returns [`Error`] if the field is absent.
#[doc(hidden)]
pub fn get_field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.as_u64().and_then(|u| <$t>::try_from(u).ok()).ok_or_else(
                        || Error::custom(concat!("number out of range for ", stringify!($t))),
                    ),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.as_i64().and_then(|i| <$t>::try_from(i).ok()).ok_or_else(
                        || Error::custom(concat!("number out of range for ", stringify!($t))),
                    ),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Number(Number::F(*self as f64))
                } else {
                    // JSON has no NaN/inf; serde_json writes null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Round-trip partner of the NaN/inf → null convention.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected array of length {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected array (tuple)")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn container_round_trips() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [1.0f32, 2.0];
        assert_eq!(<[f32; 2]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_value(&t.to_value()).unwrap(),
            (1, "x".to_string())
        );
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&Value::Number(Number::U(300))).is_err());
    }
}
