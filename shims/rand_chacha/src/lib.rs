//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! Unlike the other shims this one implements the genuine ChaCha8 block
//! function, so the stream quality matches upstream; the stream *values*
//! differ (seeding and word order are not bit-compatible), which is fine —
//! the workspace only relies on per-seed determinism.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// Block counter (state word 12).
    counter: u64,
    /// Buffered output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial)) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buf[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

// Serialization of the full generator state (key, counter, buffered block,
// cursor) so checkpoint/resume can restore the stream mid-sequence. The
// buffered block is part of the state: two generators at the same counter
// but different cursors produce different continuations.
impl serde::Serialize for ChaCha8Rng {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("key".to_string(), self.key.to_value()),
            ("counter".to_string(), self.counter.to_value()),
            ("buf".to_string(), self.buf.to_value()),
            ("cursor".to_string(), self.cursor.to_value()),
        ])
    }
}

impl serde::Deserialize for ChaCha8Rng {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error::custom("expected ChaCha8Rng state object"));
        };
        let rng = ChaCha8Rng {
            key: serde::Deserialize::from_value(serde::get_field(fields, "key")?)?,
            counter: serde::Deserialize::from_value(serde::get_field(fields, "counter")?)?,
            buf: serde::Deserialize::from_value(serde::get_field(fields, "buf")?)?,
            cursor: serde::Deserialize::from_value(serde::get_field(fields, "cursor")?)?,
        };
        if rng.cursor > 16 {
            return Err(serde::Error::custom("ChaCha8Rng cursor out of range"));
        }
        Ok(rng)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(9);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn serde_round_trip_resumes_stream_mid_block() {
        use serde::{Deserialize, Serialize};
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        // Advance into the middle of a block so cursor and buf matter.
        for _ in 0..21 {
            rng.next_u32();
        }
        let saved = rng.to_value();
        let mut restored = ChaCha8Rng::from_value(&saved).unwrap();
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn serde_rejects_bad_cursor() {
        use serde::{Deserialize, Serialize};
        let mut v = ChaCha8Rng::seed_from_u64(1).to_value();
        if let serde::Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "cursor" {
                    *val = serde::Value::Number(serde::Number::U(99));
                }
            }
        }
        assert!(ChaCha8Rng::from_value(&v).is_err());
    }
}
