//! Collection strategies: `vec(element, size_range)`.

use std::ops::Range;

use rand::Rng as _;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s whose length is drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of values from `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty size range for collection::vec");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
