//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides [`Strategy`] with `prop_map`, range and `any::<T>()` strategies,
//! tuple and `collection::vec` combinators, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros. Unlike
//! upstream proptest there is **no shrinking and no failure persistence**:
//! a failing case panics with the generating seed printed so it can be
//! reproduced by rerunning the (deterministic) test.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod collection;

/// Random source handed to strategies; deterministic per test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a rng from a 64-bit seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count as a
    /// failure.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration; only the case count is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected cases before the property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configures `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values of an associated type.
///
/// The shim's strategies generate directly (no value trees), so failing
/// inputs are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(!self.is_empty(), "empty range strategy");
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e6f64..1.0e6)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed value as a (constant) strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Seeds the per-test rng. Deterministic: the same cases are generated on
/// every run, so failures reproduce without persistence files.
#[doc(hidden)]
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name decorrelates the streams of different
    // properties while keeping each one stable run-to-run.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::from_seed_u64(hash)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        ::std::assert!(
                            rejects <= config.max_global_rejects,
                            "property {}: too many rejected cases ({rejects})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property {} failed at case {case}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges");
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.5f32..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strategy = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = test_rng("compose");
        for _ in 0..100 {
            assert!(strategy.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strategy = collection::vec(0u32..5, 2..6);
        let mut rng = test_rng("vec");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated args, assume, assert.
        #[test]
        fn macro_machinery_works(a in 0u32..50, b in any::<u32>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(a + (b % 2), a + (b % 2));
            prop_assert_ne!(a, 13);
        }
    }
}
