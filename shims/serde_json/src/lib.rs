//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the value-tree
//! model provided by the local `serde` shim.

pub use serde::{Error, Number, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors upstream
/// `serde_json`'s signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render())
}

/// Serializes `value` to a pretty-printed (2-space indent) JSON string.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors upstream
/// `serde_json`'s signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] if `s` is not valid JSON or its shape does not match
/// `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value: Value = s.parse()?;
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_containers() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![(1u32, 2.5f32)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<(u32, f32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2,").is_err());
    }
}
