//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with spawn/join, implemented over
//! `std::thread::scope` (stabilised long after crossbeam pioneered the
//! API, which is why the upstream dependency existed at all).

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Always returns `Ok` (a panicking child surfaces
    /// through its `join`, and an unjoined panicking child propagates when
    /// the scope exits, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn spawn_and_join_collect_results() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
