//! Sequence-sampling helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Up to `amount` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> impl Iterator<Item = &Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> impl Iterator<Item = &T> {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(amount.min(self.len()));
        indices.into_iter().map(|i| &self[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..10).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4);
    }
}
