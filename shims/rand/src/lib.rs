//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container that builds this repository has no access to
//! crates.io, so the workspace vendors minimal, deterministic
//! implementations of the traits and adapters it needs: [`RngCore`],
//! [`Rng`], [`SeedableRng`], [`seq::SliceRandom`] and [`rngs::StdRng`].
//!
//! The streams produced are *not* bit-compatible with upstream `rand`;
//! they are deterministic per seed, which is all the workspace relies on
//! (every experiment is seeded and compared against itself).

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let denom = ((1u64 << $bits) - 1) as $t;
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / denom;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_sample_range!(f32 => 24, f64 => 53);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64 the same
    /// way upstream `rand` does (stream values still differ from upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion only.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Everything most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
