//! Concrete RNGs.

use crate::{RngCore, SeedableRng};

/// The workspace's default RNG: xoshiro256++ behind the upstream `StdRng`
/// name. Fast, full 64-bit output, deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
