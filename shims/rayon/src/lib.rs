//! Offline stand-in for the subset of `rayon` this workspace uses:
//! `slice.par_chunks_mut(n).enumerate().for_each(...)`.
//!
//! Work is genuinely parallel — chunks are distributed round-robin over
//! `std::thread::scope` workers sized to the machine — so the spmm/GEMM
//! kernels built on top keep their multi-core speedups without the
//! external dependency.

/// Number of worker threads to use for a job of `jobs` independent items.
fn worker_count(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// Parallel chunk iterator over a mutable slice, created by
/// [`prelude::ParallelSliceMut::par_chunks_mut`].
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumerateParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attaches the chunk index, mirroring `rayon`'s `enumerate`.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { inner: self }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let jobs = self.inner.slice.len().div_ceil(self.inner.chunk_size);
        let workers = worker_count(jobs);
        if workers <= 1 {
            // Serial machines skip the chunk staging entirely — no
            // intermediate Vec, just the plain chunk iterator.
            for item in self
                .inner
                .slice
                .chunks_mut(self.inner.chunk_size)
                .enumerate()
            {
                f(item);
            }
            return;
        }
        let chunks: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .collect();
        let mut groups: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in chunks.into_iter().enumerate() {
            groups[i % workers].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        });
    }
}

/// The traits callers bring into scope with `use rayon::prelude::*`.
pub mod prelude {
    use super::ParChunksMut;

    /// Mutable-slice entry points (`par_chunks_mut`).
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into chunks of `chunk_size` for parallel
        /// mutation.
        ///
        /// # Panics
        ///
        /// Panics if `chunk_size` is zero.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn all_chunks_visited_with_correct_indices() {
        let n = 257;
        let mut data = vec![0u32; n * 3];
        data.as_mut_slice()
            .par_chunks_mut(3)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        for (i, row) in data.chunks(3).enumerate() {
            assert!(row.iter().all(|&v| v == i as u32 + 1), "row {i}");
        }
    }

    #[test]
    fn uneven_tail_chunk() {
        let mut data = vec![0u8; 10];
        data.as_mut_slice()
            .par_chunks_mut(4)
            .enumerate()
            .for_each(|(i, chunk)| {
                assert!(chunk.len() == 4 || (i == 2 && chunk.len() == 2));
                chunk.fill(1);
            });
        assert!(data.iter().all(|&v| v == 1));
    }
}
