//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! The container this workspace builds in has no crates.io access, so
//! `syn`/`quote` are unavailable; the input item is parsed directly from
//! the `proc_macro` token stream and the generated impl is assembled as a
//! source string. Supported shapes (everything the workspace derives on):
//!
//! * structs with named fields → JSON objects,
//! * tuple structs (any arity; arity 1 is the newtype form → inner value),
//! * unit structs → `null`,
//! * enums with unit / tuple / struct variants → serde's externally-tagged
//!   JSON convention.
//!
//! Generics and serde attributes are *not* supported; deriving on such an
//! item is a compile error, which is the correct failure mode for a shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named { fields: Vec<String> },
    Tuple { arity: usize },
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the shim's value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated code parses")
}

/// Derives `serde::Deserialize` (the shim's value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named {
                    fields: parse_named_fields(g.stream()),
                },
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple {
                    arity: count_tuple_fields(g.stream()),
                },
            },
            _ => Item::Struct {
                name,
                shape: Shape::Unit,
            },
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("malformed enum {name}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skips one type, tracking `<...>` nesting so commas inside generic
/// arguments don't terminate the field early. Stops at a top-level comma
/// (consumed) or end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        // `:`
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_type(&tokens, &mut i);
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named {
                    fields: parse_named_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple {
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Shape::Unit,
        };
        // Optional trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named { fields } => {
                    let mut s = String::from(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in fields {
                        s.push_str(&format!(
                            "__fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Object(__fields)");
                    s
                }
                Shape::Tuple { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple { arity } => {
                    let items: Vec<String> = (0..*arity)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple { arity } => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named { fields } => {
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{}]))]),\n",
                            fields.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n match self {{\n {arms} }}\n }}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named { fields } => {
                    let mut s = format!(
                        "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n"
                    );
                    s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                    for f in fields {
                        s.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::get_field(__obj, \"{f}\")?)?,\n"
                        ));
                    }
                    s.push_str("})");
                    s
                }
                Shape::Tuple { arity: 1 } => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple { arity } => {
                    let mut s = format!(
                        "let __items = match __v {{ ::serde::Value::Array(items) if items.len() == {arity} => items, _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected array of length {arity} for {name}\")) }};\n"
                    );
                    let elems: Vec<String> = (0..*arity)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    s.push_str(&format!(
                        "::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    ));
                    s
                }
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple { arity } => {
                        let expr = if *arity == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let mut s = format!(
                                "{{ let __items = match __inner {{ ::serde::Value::Array(items) if items.len() == {arity} => items, _ => return ::std::result::Result::Err(::serde::Error::custom(\"bad payload for {name}::{vn}\")) }};\n{name}::{vn}("
                            );
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            s.push_str(&elems.join(", "));
                            s.push_str(") }");
                            s
                        };
                        tagged_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({expr}),\n"));
                    }
                    Shape::Named { fields } => {
                        let mut s = format!(
                            "{{ let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"bad payload for {name}::{vn}\"))?;\n{name}::{vn} {{\n"
                        );
                        for f in fields {
                            s.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(__obj, \"{f}\")?)?,\n"
                            ));
                        }
                        s.push_str("} }");
                        tagged_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({s}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n match __v {{\n ::serde::Value::String(__s) => match __s.as_str() {{\n {unit_arms} __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n }},\n ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n let (__tag, __inner) = &__fields[0];\n match __tag.as_str() {{\n {tagged_arms} __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n }}\n }},\n _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum {name}\")),\n }}\n }}\n}}"
            )
        }
    }
}
