//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The real criterion crate is unavailable in this build environment, so
//! this shim keeps the bench targets compiling and runnable: each benchmark
//! is timed with a fixed number of warmup and measurement iterations and a
//! single mean/min line is printed per benchmark. It performs no statistical
//! analysis, outlier rejection, or HTML reporting.

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Iterations used to measure each benchmark (after warmup).
const MEASURE_ITERS: u32 = 10;
/// Warmup iterations before measurement.
const WARMUP_ITERS: u32 = 2;

/// Measures a fixed reference workload and prints it as a `BENCH_CALIB`
/// line. Downstream tooling (the repo's bench-gate comparator) divides each
/// benchmark median by the calibration printed just before it, so baselines
/// compare machine-speed-normalized ratios instead of raw nanoseconds — a
/// slower or faster machine (CI runner churn, container throttling) cancels
/// out, while a genuine regression in one benchmark does not.
///
/// Called once per benchmark report, not once per process: shared machines
/// drift on a timescale of minutes, so only a contemporaneous calibration
/// tracks the conditions the adjacent measurement actually ran under. The
/// workload mixes float arithmetic with a multi-megabyte strided memory
/// walk so it is exposed to the same cache/bandwidth contention as the
/// sparse-matrix benchmarks it normalizes.
fn calibration_ns() -> u64 {
    // The walk buffer outlives one call so repeated calibrations do not
    // re-pay page-fault cost; contents are irrelevant, footprint is not.
    static BUF: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let mut buf = BUF.lock().unwrap_or_else(|e| e.into_inner());
    if buf.is_empty() {
        buf.resize(512 * 1024, 3); // 4 MiB of u64s, past typical L2
    }
    let mut samples = Vec::with_capacity(5);
    for round in 0..5u64 {
        let start = Instant::now();
        let mut acc = 1.000_000_1f64;
        let mut idx = (round as usize * 7919) % buf.len();
        for i in 0u64..400_000 {
            // Stride 67 words covers the buffer with poor locality, like a
            // sparse gather; the float op keeps the FPU pipeline honest.
            idx = (idx + 67) % buf.len();
            acc = black_box(acc * 1.000_000_1 + (buf[idx] ^ i) as f64 * 1e-12);
        }
        black_box(acc);
        samples.push(start.elapsed());
    }
    let ns = u64::try_from(median_of(&samples).as_nanos())
        .unwrap_or(u64::MAX)
        .max(1);
    println!("BENCH_CALIB {{\"calib_ns\":{ns}}}");
    ns
}

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are grouped between setup calls; accepted for
/// compatibility, ignored by the shim (every iteration re-runs setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's warmup is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.id, &bencher.samples);
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&name.into(), &bencher.samples);
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        calibration_ns();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let median = median_of(samples);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" [{n} elems/iter]"),
            Some(Throughput::Bytes(n)) => format!(" [{n} B/iter]"),
            None => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?}, median {median:?}, min {min:?} over {} iters{tp}",
            self.name,
            samples.len()
        );
        // Machine-readable twin of the line above. Tooling (the repo's
        // bench-gate comparator) extracts these lines with
        // `grep '^BENCH_JSON '`; the payload is a single flat JSON object.
        println!(
            "BENCH_JSON {{\"id\":\"{}/{}\",\"mean_ns\":{},\"median_ns\":{},\"min_ns\":{},\"iters\":{}}}",
            json_escape(&self.name),
            json_escape(id),
            mean.as_nanos(),
            median.as_nanos(),
            min.as_nanos(),
            samples.len()
        );
    }
}

/// Median sample duration (upper median for even counts).
fn median_of(samples: &[Duration]) -> Duration {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Escapes the characters JSON strings cannot hold raw; bench ids are
/// plain identifiers in practice, so this stays minimal.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Top-level benchmark driver; mirrors criterion's entry type.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }

    /// Finalizes reporting (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, matching criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench entry point, matching criterion's macro shape.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| {
                ran += 1;
                xs.iter().sum::<u64>()
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(ran >= 1);
    }
}
